"""End-to-end tuning time model (Table 2).

The paper reports that most of Korch's tuning time is spent in TVM
MetaSchedule profiling memory-intensive candidate kernels, that identical
candidates are deduplicated through the TVM database, and that vendor-library
candidates cost almost nothing to profile.  This module aggregates the
per-kernel tuning costs reported by the backends with that deduplication.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable

from ..gpu.features import KernelFeatures

__all__ = ["TuningTimeModel", "TuningTimeReport"]


@dataclass
class TuningTimeReport:
    """Aggregate tuning-time estimate for one model."""

    num_candidates: int = 0
    num_profiled: int = 0
    num_deduplicated: int = 0
    num_vendor_candidates: int = 0
    #: Candidates answered by the persistent profile cache: their tuning cost
    #: was paid by an earlier run (the §6.5 amortization made durable).
    num_cache_hits: int = 0
    total_seconds: float = 0.0
    per_backend_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def total_hours(self) -> float:
        return self.total_seconds / 3600.0

    def as_payload(self) -> dict:
        """JSON-representable rendering (stored alongside cached plans, so a
        replayed run reports the cold run's Table 2 statistics)."""
        return {
            "num_candidates": self.num_candidates,
            "num_profiled": self.num_profiled,
            "num_deduplicated": self.num_deduplicated,
            "num_vendor_candidates": self.num_vendor_candidates,
            "num_cache_hits": self.num_cache_hits,
            "total_seconds": self.total_seconds,
            "per_backend_seconds": dict(self.per_backend_seconds),
        }

    @staticmethod
    def from_payload(data: dict) -> "TuningTimeReport | None":
        try:
            return TuningTimeReport(
                num_candidates=int(data["num_candidates"]),
                num_profiled=int(data["num_profiled"]),
                num_deduplicated=int(data["num_deduplicated"]),
                num_vendor_candidates=int(data["num_vendor_candidates"]),
                num_cache_hits=int(data["num_cache_hits"]),
                total_seconds=float(data["total_seconds"]),
                per_backend_seconds={
                    str(k): float(v) for k, v in data["per_backend_seconds"].items()
                },
            )
        except (KeyError, TypeError, ValueError):
            return None


class TuningTimeModel:
    """Accumulates tuning time across candidate kernels with deduplication.

    Two candidates with the same structural signature (same primitive ops,
    same tensor shapes) hit the TVM database cache and are only tuned once,
    which is why the paper's candidate-kernel counts are far larger than the
    number of kernels actually tuned.
    """

    #: Seconds to measure a vendor-library kernel (a handful of launches).
    VENDOR_PROFILE_SECONDS = 2.0

    def __init__(self) -> None:
        self._seen: set[tuple] = set()
        self.report = TuningTimeReport()
        # One tuning model may be shared by every partition's profiler (that
        # is what makes the dedup span the whole model, like the paper's TVM
        # database) — including from concurrent partition workers.
        self._lock = threading.Lock()

    def record(self, signature: tuple, features: KernelFeatures, backend_name: str, tuning_s: float) -> None:
        """Record one profiled candidate kernel."""
        with self._lock:
            self.report.num_candidates += 1
            if not features.is_memory_bound:
                self.report.num_vendor_candidates += 1
                tuning_s = max(tuning_s, self.VENDOR_PROFILE_SECONDS)
            if signature in self._seen:
                self.report.num_deduplicated += 1
                return
            self._seen.add(signature)
            self.report.num_profiled += 1
            self.report.total_seconds += tuning_s
            self.report.per_backend_seconds[backend_name] = (
                self.report.per_backend_seconds.get(backend_name, 0.0) + tuning_s
            )

    def record_cache_hit(self, signature: tuple, features: KernelFeatures | None = None) -> None:
        """Record a candidate answered by the persistent profile cache.

        The kernel was tuned by some earlier run, so it contributes to the
        candidate count but adds no tuning time to this run.
        """
        with self._lock:
            self.report.num_candidates += 1
            self.report.num_cache_hits += 1
            if features is not None and not features.is_memory_bound:
                self.report.num_vendor_candidates += 1
            self._seen.add(signature)

    @staticmethod
    def merge(reports: Iterable[TuningTimeReport]) -> TuningTimeReport:
        """Combine the reports of several subgraphs into a model-level total."""
        merged = TuningTimeReport()
        for report in reports:
            merged.num_candidates += report.num_candidates
            merged.num_profiled += report.num_profiled
            merged.num_deduplicated += report.num_deduplicated
            merged.num_vendor_candidates += report.num_vendor_candidates
            merged.num_cache_hits += report.num_cache_hits
            merged.total_seconds += report.total_seconds
            for backend, seconds in report.per_backend_seconds.items():
                merged.per_backend_seconds[backend] = (
                    merged.per_backend_seconds.get(backend, 0.0) + seconds
                )
        return merged
