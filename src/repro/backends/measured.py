"""Measured-latency profiling backend.

Every other backend in this package is an analytical latency *model*; this
one answers from *observations*.  The plan executor measures each kernel of
an assembled plan (:meth:`repro.runtime.executor.PlanExecutor.measure` —
warmup runs, then a trimmed mean over timed repeats) and the resulting
:class:`~repro.runtime.executor.MeasurementReport` is ingested here.

Two consumption paths, both reusing the existing profile-cache machinery:

* **Persistent**: :meth:`MeasuredBackend.write_profiles` stores each measured
  kernel as a normal :class:`~repro.gpu.profiler.KernelProfile` under the
  measured backend's own cache context
  (``PersistentProfileCache(store, spec, [measured_backend])``).  The cache
  key embeds ``type(backend).__name__``, ``backend.name`` and
  ``MEASURED_MODEL_VERSION`` (see :func:`repro.cache.keys.backend_fingerprint`),
  so measured entries can never collide with analytic ones in the shared
  store.  An engine constructed with ``backends=[measured_backend]`` then
  answers profile lookups from those entries — the profiler consults the
  persistent cache *before* calling any ``estimate`` — and ``SolveStage``
  re-ranks plans from observed latency.
* **In-memory**: ``estimate`` answers from the ingested measurement table
  directly (keyed on the kernel's feature summary), optionally falling back
  to a chain of analytic backends for kernels that were never executed, so
  re-solving stays feasible when only the selected plan was measured.
"""

from __future__ import annotations

from typing import Sequence

from ..gpu.cost_model import CostBreakdown
from ..gpu.features import KernelFeatures
from ..gpu.specs import GpuSpec
from .base import KernelBackend

__all__ = ["MEASURED_MODEL_VERSION", "MeasuredBackend", "features_key"]

#: Cache-key version of measured profiles.  Deliberately far from the
#: analytic backends' model versions (all small integers): even a future
#: analytic backend named "measured" at v1 would still produce different
#: fingerprints, and the distance makes measured entries easy to recognize
#: in cache maintenance tooling.
MEASURED_MODEL_VERSION = 101


def features_key(features: KernelFeatures) -> tuple:
    """Hashable identity of a kernel's feature summary.

    :class:`KernelFeatures` itself is a mutable dataclass (it carries a
    dict); this canonical tuple is what the in-memory measurement table is
    keyed on.  Two kernels with equal features are the same kernel for every
    latency model in this package, measured or analytic.
    """
    return (
        features.num_primitives,
        tuple(sorted(features.category_counts.items())),
        features.input_bytes,
        features.output_bytes,
        features.flops,
        features.linear_flops,
        features.multipass_bytes,
        features.output_elements,
        features.num_outputs,
        tuple(features.branch_shapes),
        tuple(features.resize_factors),
        tuple(features.gemms),
        tuple(features.convs),
        features.has_opaque,
        features.dtype.value,
    )


class MeasuredBackend(KernelBackend):
    """A kernel "latency model" backed by wall-clock measurements.

    ``fallback`` (a sequence of analytic backends, or ``None``) answers for
    kernels without a measurement; with no fallback, unmeasured kernels are
    rejected (``estimate`` returns ``None``), which restricts re-solving to
    the measured kernel set.
    """

    name = "measured"
    MODEL_VERSION = MEASURED_MODEL_VERSION

    def __init__(self, fallback: Sequence[KernelBackend] | None = None) -> None:
        self.fallback: list[KernelBackend] = list(fallback or [])
        #: features-key -> measured latency (seconds).
        self._by_features: dict[tuple, float] = {}
        #: structural kernel signature -> (features, measured latency); kept
        #: so :meth:`write_profiles` can address the persistent cache.
        self._by_signature: dict[tuple, tuple[KernelFeatures, float]] = {}

    # ------------------------------------------------------------ ingestion
    def record(self, signature: tuple, features: KernelFeatures, latency_s: float) -> None:
        """Record one measured kernel (last write wins)."""
        self._by_features[features_key(features)] = float(latency_s)
        self._by_signature[signature] = (features, float(latency_s))

    def ingest(self, measurement) -> int:
        """Record every kernel of a
        :class:`~repro.runtime.executor.MeasurementReport`; returns how many
        were ingested."""
        for kernel in measurement.kernels:
            self.record(kernel.signature, kernel.features, kernel.measured_s)
        return len(measurement.kernels)

    def write_profiles(self, cache) -> int:
        """Store every recorded measurement as a kernel profile.

        ``cache`` is a :class:`~repro.cache.profile_cache.PersistentProfileCache`
        (duck-typed) built over *this* backend's fingerprint — typically
        ``PersistentProfileCache(store, spec, [self])`` — so entries land
        under the measured ``MODEL_VERSION`` and never shadow analytic ones.
        Returns the number of entries written.
        """
        from ..gpu.profiler import KernelProfile

        for signature, (features, latency_s) in self._by_signature.items():
            profile = KernelProfile(
                latency_s=latency_s,
                backend=self.name,
                breakdown=self._breakdown(features, latency_s),
                features=features,
            )
            cache.put(signature, profile, tuned=True)
        return len(self._by_signature)

    @property
    def num_measurements(self) -> int:
        return len(self._by_signature)

    # ------------------------------------------------------ backend contract
    def supports(self, features: KernelFeatures) -> bool:
        if features_key(features) in self._by_features:
            return True
        return any(b.supports(features) for b in self.fallback)

    def estimate(self, features: KernelFeatures, spec: GpuSpec) -> CostBreakdown | None:
        measured = self._by_features.get(features_key(features))
        if measured is not None:
            return self._breakdown(features, measured)
        best: CostBreakdown | None = None
        for backend in self.fallback:
            breakdown = backend.estimate(features, spec)
            if breakdown is not None and (best is None or breakdown.latency_s < best.latency_s):
                best = breakdown
        return best

    def tuning_time_s(self, features: KernelFeatures) -> float:
        """Measurement replaces tuning; its cost is the repeats themselves,
        already spent — nothing to amortize into Table 2 accounting."""
        return 0.0

    @staticmethod
    def _breakdown(features: KernelFeatures, latency_s: float) -> CostBreakdown:
        """A :class:`CostBreakdown` shell around an observed latency: the
        whole time is attributed to the memory term (no model to split it),
        with unit efficiencies — downstream consumers only read
        ``latency_s``."""
        return CostBreakdown(
            latency_s=latency_s,
            launch_s=0.0,
            memory_s=latency_s,
            compute_s=0.0,
            traffic_bytes=features.input_bytes + features.output_bytes,
            flops=features.flops,
            bandwidth_efficiency=1.0,
            compute_efficiency=1.0,
        )
