"""Backend interface for kernel latency estimation.

Korch's kernel profiler (§5.2) generates a kernel for each candidate subgraph
and measures it: memory-intensive candidates go to TVM MetaSchedule,
compute-intensive ones to vendor libraries (cuBLAS/cuDNN/TensorRT), and
candidates no backend supports are rejected.  In this reproduction each
backend is an analytical latency model with the same contract: it either
returns a latency estimate or ``None`` to reject the candidate.
"""

from __future__ import annotations

import abc

from ..gpu.cost_model import CostBreakdown
from ..gpu.features import KernelFeatures
from ..gpu.specs import GpuSpec

__all__ = ["KernelBackend"]


class KernelBackend(abc.ABC):
    """Latency (and tuning-time) model of one kernel generation backend."""

    #: Human-readable backend name used in reports ("cuBLAS", "TVM", ...).
    name: str = "backend"

    #: Version of this backend's analytical latency model.  Bump whenever the
    #: latency formula changes: the persistent profile cache keys on it, so a
    #: bump invalidates profiles computed under the old formula.
    MODEL_VERSION: int = 1

    @abc.abstractmethod
    def supports(self, features: KernelFeatures) -> bool:
        """Whether this backend can generate a kernel for the candidate."""

    @abc.abstractmethod
    def estimate(self, features: KernelFeatures, spec: GpuSpec) -> CostBreakdown | None:
        """Latency estimate, or ``None`` when the candidate is unsupported."""

    def tuning_time_s(self, features: KernelFeatures) -> float:
        """Wall-clock time the backend would spend tuning this kernel.

        Vendor libraries need no tuning; TVM MetaSchedule overrides this with
        its per-kernel tuning budget (used to reproduce Table 2).
        """
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"
