"""TensorRT kernel-library latency model.

TensorRT ships hand-tuned kernels for whole operators and for its fusion
patterns (conv+bias+activation, elementwise chains, softmax, normalizations,
GEMM with epilogue).  This backend plays two roles in the reproduction:

* it provides the kernel latencies of the **TensorRT baseline** (the baseline
  groups operators according to TensorRT's fusion rules and costs each group
  here), and
* it can be registered as an additional Korch backend — the paper's artifact
  disables it by default because it roughly doubles tuning time for marginal
  gain (§A.6), and the default profiler here mirrors that.

Hand-written kernels are better than auto-generated ones for the patterns
TensorRT recognizes (higher base efficiencies than the TVM model), but the
library has no kernels for arbitrary fused subgraphs, so highly heterogeneous
candidates are rejected rather than penalized.
"""

from __future__ import annotations

from ..gpu.cost_model import CostBreakdown, parallelism_factor, roofline_latency
from ..gpu.features import KernelFeatures
from ..gpu.specs import GpuSpec
from .base import KernelBackend
from .cublas import gemm_efficiency
from .cudnn import conv_efficiency

__all__ = ["TensorRTBackend"]

_MEMORY_BANDWIDTH_EFFICIENCY = 0.88
_COMPUTE_GEMM_BONUS = 1.05  # TensorRT's GEMM kernels are marginally better tuned than cuBLAS defaults
_MAX_FUSED_MEMORY_PRIMITIVES = 12


class TensorRTBackend(KernelBackend):
    """Latency model for TensorRT's hand-tuned kernel library."""

    name = "TensorRT"

    def supports(self, features: KernelFeatures) -> bool:
        if features.has_opaque:
            return False
        if features.num_linear > 1:
            return False
        if features.is_memory_bound:
            # Library kernels exist for operator-shaped fusion groups, not for
            # arbitrary multi-branch subgraphs.
            return (
                features.num_primitives <= _MAX_FUSED_MEMORY_PRIMITIVES
                and features.branch_heterogeneity == 0
            )
        # Compute kernels: one GEMM/conv plus an elementwise epilogue chain
        # (bias, folded BatchNorm, activation).  Reductions cannot be fused.
        if features.num_reduce > 0:
            return False
        return (
            len(features.gemms) + len(features.convs) == 1
            and features.num_outputs == 1
            and features.num_primitives <= _MAX_FUSED_MEMORY_PRIMITIVES
        )

    def estimate(self, features: KernelFeatures, spec: GpuSpec) -> CostBreakdown | None:
        if not self.supports(features):
            return None
        bandwidth_eff = _MEMORY_BANDWIDTH_EFFICIENCY * parallelism_factor(features, spec)
        if features.is_memory_bound:
            compute_eff = 0.7
        elif features.gemms:
            compute_eff = min(0.92, gemm_efficiency(features.gemms[0]) * _COMPUTE_GEMM_BONUS)
        else:
            compute_eff = min(0.9, conv_efficiency(features.convs[0]) * _COMPUTE_GEMM_BONUS)
        return roofline_latency(
            features,
            spec,
            bandwidth_efficiency=bandwidth_eff,
            compute_efficiency=compute_eff,
        )
