"""Latency model for framework-native (PyTorch eager) kernels.

The PyTorch baseline in Figure 6 launches one pre-compiled kernel per
operator.  Those kernels are reasonably tuned but (a) cannot fuse across
operators, (b) pay a per-launch framework dispatch overhead on top of the raw
CUDA launch, and (c) composite operators (softmax, normalizations) run their
multi-pass algorithm inside one kernel, paying the extra traffic the
``multipass_bytes`` feature models.
"""

from __future__ import annotations

from ..gpu.cost_model import CostBreakdown, parallelism_factor, roofline_latency
from ..gpu.features import KernelFeatures
from ..gpu.specs import GpuSpec
from .base import KernelBackend
from .cublas import gemm_efficiency
from .cudnn import conv_efficiency

__all__ = ["FrameworkEagerBackend"]

#: Host-side dispatcher overhead added to every eager-mode kernel launch.
_FRAMEWORK_OVERHEAD_S = 8e-6
_MEMORY_BANDWIDTH_EFFICIENCY = 0.75
_FALLBACK_COMPUTE_EFFICIENCY = 0.55


class FrameworkEagerBackend(KernelBackend):
    """Latency model for eager-mode framework kernels (PyTorch)."""

    name = "PyTorch-eager"

    def supports(self, features: KernelFeatures) -> bool:
        # Eager mode has a kernel for every operator, including opaque ones.
        return True

    def estimate(self, features: KernelFeatures, spec: GpuSpec) -> CostBreakdown | None:
        bandwidth_eff = _MEMORY_BANDWIDTH_EFFICIENCY * parallelism_factor(features, spec)
        if features.gemms:
            compute_eff = gemm_efficiency(features.gemms[0])
        elif features.convs:
            compute_eff = conv_efficiency(features.convs[0])
        else:
            compute_eff = _FALLBACK_COMPUTE_EFFICIENCY
        return roofline_latency(
            features,
            spec,
            bandwidth_efficiency=bandwidth_eff,
            compute_efficiency=compute_eff,
            launch_overhead_s=spec.kernel_launch_s + _FRAMEWORK_OVERHEAD_S,
        )
