"""Kernel generation backend models (cuBLAS, cuDNN, TVM, TensorRT, eager)."""

from .base import KernelBackend
from .cublas import CublasBackend, gemm_efficiency
from .cudnn import CudnnBackend, conv_efficiency
from .framework import FrameworkEagerBackend
from .measured import MEASURED_MODEL_VERSION, MeasuredBackend
from .tensorrt import TensorRTBackend
from .tuning_time import TuningTimeModel, TuningTimeReport
from .tvm_meta import TvmMetaScheduleBackend, codegen_bandwidth_efficiency

__all__ = [
    "KernelBackend",
    "CublasBackend",
    "CudnnBackend",
    "TvmMetaScheduleBackend",
    "TensorRTBackend",
    "FrameworkEagerBackend",
    "MeasuredBackend",
    "MEASURED_MODEL_VERSION",
    "TuningTimeModel",
    "TuningTimeReport",
    "gemm_efficiency",
    "conv_efficiency",
    "codegen_bandwidth_efficiency",
    "default_korch_backends",
    "tensorrt_backends",
    "tvm_backends",
    "eager_backends",
]


def default_korch_backends(enable_tensorrt: bool = False) -> list[KernelBackend]:
    """Backend set Korch's kernel profiler consults (§5.2).

    Memory-intensive candidates go to TVM MetaSchedule, compute-intensive ones
    to cuBLAS/cuDNN.  The TensorRT backend is optional and disabled by
    default, mirroring the paper's artifact configuration (§A.6).
    """
    backends: list[KernelBackend] = [
        CublasBackend(),
        CudnnBackend(),
        TvmMetaScheduleBackend(),
    ]
    if enable_tensorrt:
        backends.append(TensorRTBackend())
    return backends


def tensorrt_backends() -> list[KernelBackend]:
    """Backends available to the TensorRT baseline (its own kernel library)."""
    return [TensorRTBackend(), CublasBackend(), CudnnBackend()]


def tvm_backends() -> list[KernelBackend]:
    """Backends available to the TVM baseline (auto-scheduled + vendor GEMM)."""
    return [TvmMetaScheduleBackend(), CublasBackend(), CudnnBackend()]


def eager_backends() -> list[KernelBackend]:
    """Backends available to the PyTorch-eager baseline."""
    return [FrameworkEagerBackend()]
