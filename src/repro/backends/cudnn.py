"""cuDNN convolution latency model.

Accepts candidate kernels whose linear work is exactly one convolution (or
transposed convolution) plus the standard fused epilogue cuDNN supports
(bias add and an activation) and small layout prologues.  The efficiency
model penalizes convolutions with few channels (they cannot fill the
implicit-GEMM tiles) and grouped/depthwise convolutions (memory-bound in
practice).
"""

from __future__ import annotations

from ..gpu.cost_model import CostBreakdown, parallelism_factor, roofline_latency
from ..gpu.features import ConvShape, KernelFeatures
from ..gpu.specs import GpuSpec
from .base import KernelBackend

__all__ = ["CudnnBackend", "conv_efficiency"]

_BASE_EFFICIENCY = 0.82
_FULL_CHANNELS = 128
_CHANNEL_EXPONENT = 0.3
#: cuDNN fused-op epilogues absorb bias, per-channel affine (folded BatchNorm)
#: and an activation; anything longer is rejected.
_MAX_EPILOGUE_PRIMITIVES = 10


def conv_efficiency(shape: ConvShape) -> float:
    """Achieved fraction of peak FLOPs for one convolution shape."""

    def g(channels: int) -> float:
        return (min(channels, _FULL_CHANNELS) / _FULL_CHANNELS) ** _CHANNEL_EXPONENT

    efficiency = _BASE_EFFICIENCY * g(shape.in_channels // shape.groups) * g(shape.out_channels)
    # 1x1 convolutions are pure GEMMs and slightly more efficient than the
    # general implicit-GEMM path; depthwise convolutions are memory bound.
    if shape.kernel_h == shape.kernel_w == 1:
        efficiency = min(0.9, efficiency * 1.1)
    if shape.groups == shape.in_channels and shape.groups > 1:
        efficiency *= 0.5
    return max(0.05, efficiency)


class CudnnBackend(KernelBackend):
    """Latency model for cuDNN convolution kernels (with fused epilogue)."""

    name = "cuDNN"

    def supports(self, features: KernelFeatures) -> bool:
        if features.has_opaque:
            return False
        if len(features.convs) != 1 or features.gemms:
            return False
        extra = features.num_primitives - 1
        if extra > _MAX_EPILOGUE_PRIMITIVES:
            return False
        if features.num_reduce > 0:
            return False
        return features.num_outputs == 1

    def estimate(self, features: KernelFeatures, spec: GpuSpec) -> CostBreakdown | None:
        if not self.supports(features):
            return None
        conv = features.convs[0]
        compute_eff = conv_efficiency(conv)
        bandwidth_eff = 0.85 * parallelism_factor(features, spec)
        # The implicit-GEMM algorithm re-reads each input element once per
        # overlapping filter position that hits it; charge a modest extra
        # traffic factor for non-1x1 kernels.
        reuse_reads = 0
        if conv.kernel_h * conv.kernel_w > 1:
            reuse_reads = int(0.25 * features.input_bytes)
        return roofline_latency(
            features,
            spec,
            bandwidth_efficiency=bandwidth_eff,
            compute_efficiency=compute_eff,
            extra_traffic_bytes=reuse_reads,
        )
