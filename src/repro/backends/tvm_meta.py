"""TVM MetaSchedule code-generation model for memory-intensive kernels.

Korch sends every candidate kernel without a linear-transformation primitive
to TVM's MetaScheduler for auto-tuning (§5.2).  This backend models two
properties of that flow that the paper's evaluation depends on:

1. **Achieved bandwidth degrades with fusion complexity.**  A fused kernel
   that produces several heterogeneous output branches (different shapes,
   different resize factors — e.g. the Segformer MLP-decoder subgraph of
   Figure 11) forces a single compromise tiling.  The penalty grows with the
   working set relative to the L2 cache, which is why the monolithic kernel
   wins at batch size 1 but loses by ~2.9× at batch size 16 (Figure 13).

2. **Tuning cost.**  Memory-intensive kernels tune in minutes; this cost is
   accumulated per *distinct* kernel by the tuning-time model that reproduces
   Table 2 (see :mod:`repro.backends.tuning_time`).

Calibration constants below were fitted so the batch-1/batch-16 crossover and
the magnitude of the paper's case studies are reproduced; they are exposed as
module constants so the ablation benchmarks can sweep them.
"""

from __future__ import annotations

from ..gpu.cost_model import CostBreakdown, parallelism_factor, roofline_latency
from ..gpu.features import KernelFeatures
from ..gpu.specs import GpuSpec
from .base import KernelBackend

__all__ = ["TvmMetaScheduleBackend", "codegen_bandwidth_efficiency"]

#: Achieved fraction of peak bandwidth for a simple, well-tuned injective kernel.
_BASE_BANDWIDTH_EFFICIENCY = 0.85
#: Achieved fraction of peak FLOPs for generated compute (rarely the bound).
_COMPUTE_EFFICIENCY = 0.60
#: Strength of the heterogeneous-branch penalty (per unit of heterogeneity).
#: Calibrated so that the fused Segformer-decoder kernel wins at batch 1 but
#: loses by ~2-3x at batch 16 (Figure 13).
_HETEROGENEITY_WEIGHT = 0.007
#: Exponent of the working-set / L2 ratio in the complexity penalty.
_WORKING_SET_EXPONENT = 1.0
#: Layout-heavy kernels (many transposes/reshapes with different strides) pay
#: a mild additional penalty per layout primitive beyond the first two.
_LAYOUT_WEIGHT = 0.03
#: Largest candidate (in primitives) MetaSchedule is allowed to fuse into one
#: kernel; beyond this the schedule space explodes and Korch's heuristics
#: reject the candidate (§6.5).
MAX_FUSED_PRIMITIVES = 24


def codegen_bandwidth_efficiency(features: KernelFeatures, spec: GpuSpec) -> float:
    """Fraction of peak bandwidth a MetaSchedule-generated kernel achieves."""
    efficiency = _BASE_BANDWIDTH_EFFICIENCY * parallelism_factor(features, spec)

    # Penalty for fusing heterogeneous output branches into one schedule.
    heterogeneity = features.branch_heterogeneity
    if heterogeneity > 0:
        working_set_ratio = max(1.0, features.traffic_bytes / spec.l2_cache_bytes)
        penalty = 1.0 + _HETEROGENEITY_WEIGHT * heterogeneity * working_set_ratio ** _WORKING_SET_EXPONENT
        efficiency /= penalty

    # Mild penalty for an abundance of distinct layout transformations.
    extra_layout = max(0, features.num_layout - 2)
    efficiency /= 1.0 + _LAYOUT_WEIGHT * extra_layout

    return max(0.02, efficiency)


class TvmMetaScheduleBackend(KernelBackend):
    """Latency/tuning model for TVM MetaSchedule generated kernels."""

    name = "TVM-MetaSchedule"

    def __init__(self, max_fused_primitives: int = MAX_FUSED_PRIMITIVES) -> None:
        self.max_fused_primitives = max_fused_primitives

    def supports(self, features: KernelFeatures) -> bool:
        if features.has_opaque:
            return False
        # Compute-intensive candidates are lowered to vendor libraries instead
        # (§5.2); MetaSchedule handles the memory-intensive ones.
        if not features.is_memory_bound:
            return False
        return features.num_primitives <= self.max_fused_primitives

    def estimate(self, features: KernelFeatures, spec: GpuSpec) -> CostBreakdown | None:
        if not self.supports(features):
            return None
        bandwidth_eff = codegen_bandwidth_efficiency(features, spec)
        return roofline_latency(
            features,
            spec,
            bandwidth_efficiency=bandwidth_eff,
            compute_efficiency=_COMPUTE_EFFICIENCY,
        )

    def tuning_time_s(self, features: KernelFeatures) -> float:
        """MetaSchedule tuning budget for one memory-intensive kernel.

        The paper reports that most memory-intensive kernels tune within two
        minutes; complex fused kernels take longer (one Segformer kernel took
        hours).  The model grows linearly in primitive count and in branch
        heterogeneity, calibrated so a typical 8-primitive fused kernel stays
        around 80 s and even a 15-primitive chain fits the two-minute budget,
        which also keeps the whole-model totals in the ballpark of Table 2
        once the profile database deduplication is applied.
        """
        base = 30.0  # seconds: trivial injective kernels
        per_primitive = 6.0
        heterogeneity_cost = 90.0 * features.branch_heterogeneity
        return base + per_primitive * features.num_primitives + heterogeneity_cost
