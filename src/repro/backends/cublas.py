"""cuBLAS GEMM latency model.

Accepts candidate kernels whose linear work is exactly one (batched) matrix
multiplication, optionally surrounded by cheap elementwise/layout primitives
that cuBLAS(Lt) can absorb as a prologue/epilogue (bias, scaling, transposed
operands).  Anything larger is rejected, matching the paper's behaviour of
rejecting compute-intensive candidates that do not match vendor-library
parameters (§5.2).

Efficiency model
----------------
Vendor GEMM kernels reach a high fraction of peak FLOPs only when all three
dimensions (M, N, K) are large enough to fill the tensor-core tiles.  The
achieved efficiency is modeled as::

    eff = BASE · g(M) · g(N) · g(K)        g(d) = (min(d, FULL) / FULL)^0.35

so a GEMM with an extreme aspect ratio (e.g. the 1024:1 input of Figure 8)
runs far below peak, and re-laying-out the operands (fusing a Transpose, as
Korch's strategy does) recovers most of the loss — reproducing the 3.5×
kernel-level gap reported in the EfficientViT case study.
"""

from __future__ import annotations

from ..gpu.cost_model import CostBreakdown, parallelism_factor, roofline_latency
from ..gpu.features import GemmShape, KernelFeatures
from ..gpu.specs import GpuSpec
from .base import KernelBackend

__all__ = ["CublasBackend", "gemm_efficiency"]

#: Fraction of peak FLOPs a well-shaped FP32 GEMM achieves with cuBLAS.
_BASE_EFFICIENCY = 0.88
#: Dimension at which a GEMM dimension stops limiting tile utilization.
_FULL_TILE_DIM = 512
#: Exponent of the tile-utilization penalty.
_DIM_EXPONENT = 0.35
#: Largest number of fusible non-linear primitives cuBLASLt-style epilogues
#: absorb (bias, scaling, activations, per-channel affine chains).
_MAX_EPILOGUE_PRIMITIVES = 10


def gemm_efficiency(shape: GemmShape) -> float:
    """Achieved fraction of peak FLOPs for one GEMM shape."""

    def g(dim: int) -> float:
        return (min(dim, _FULL_TILE_DIM) / _FULL_TILE_DIM) ** _DIM_EXPONENT

    return _BASE_EFFICIENCY * g(shape.m) * g(shape.n) * g(shape.k)


class CublasBackend(KernelBackend):
    """Latency model for cuBLAS / cuBLASLt GEMM kernels."""

    name = "cuBLAS"

    def supports(self, features: KernelFeatures) -> bool:
        if features.has_opaque:
            return False
        if len(features.gemms) != 1 or features.convs:
            return False
        # Everything except the GEMM must be absorbable as prologue/epilogue.
        extra = features.num_primitives - 1
        if extra > _MAX_EPILOGUE_PRIMITIVES:
            return False
        # Reductions other than the GEMM itself are not expressible in cuBLAS.
        if features.num_reduce > 0:
            return False
        return features.num_outputs == 1

    def estimate(self, features: KernelFeatures, spec: GpuSpec) -> CostBreakdown | None:
        if not self.supports(features):
            return None
        gemm = features.gemms[0]
        compute_eff = gemm_efficiency(gemm)
        bandwidth_eff = 0.85 * parallelism_factor(features, spec)
        return roofline_latency(
            features,
            spec,
            bandwidth_efficiency=bandwidth_eff,
            compute_efficiency=compute_eff,
        )
