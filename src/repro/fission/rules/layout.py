"""Fission rules for layout transformation operators.

Every layout operator maps to a single layout primitive except:

* ``Split`` — decomposed into one ``Slice`` primitive per output, so every
  primitive keeps a single output tensor (paper footnote 1);
* ``Flatten`` / ``Squeeze`` / ``Unsqueeze`` — canonicalized into ``Reshape``;
* ``Expand`` — emitted as a chain of broadcast primitives, one per expanded
  axis.
"""

from __future__ import annotations

import math

from ...primitives.layout import LayoutPrimitive
from ...primitives.reduce_broadcast import BroadcastPrimitive
from ..context import FissionContext
from ..registry import fission_rule

__all__ = []


@fission_rule("Transpose")
def _transpose(ctx: FissionContext) -> None:
    rank = ctx.input_type(0).rank
    perm = tuple(ctx.attr("perm") or tuple(reversed(range(rank))))
    ctx.emit_final(LayoutPrimitive("Transpose", perm=perm), [ctx.input(0)])


@fission_rule("Reshape")
def _reshape(ctx: FissionContext) -> None:
    # The operator-level shape may contain -1; the declared output type is
    # already fully static, so use it directly.
    ctx.emit_final(
        LayoutPrimitive("Reshape", shape=ctx.output_type(0).shape), [ctx.input(0)]
    )


@fission_rule("Flatten", "Squeeze", "Unsqueeze")
def _reshape_like(ctx: FissionContext) -> None:
    ctx.emit_final(
        LayoutPrimitive("Reshape", shape=ctx.output_type(0).shape), [ctx.input(0)]
    )


@fission_rule("Slice")
def _slice(ctx: FissionContext) -> None:
    starts = tuple(ctx.attr("starts"))
    attrs = {
        "starts": starts,
        "ends": tuple(ctx.attr("ends")),
        "axes": tuple(ctx.attr("axes") or range(len(starts))),
        "steps": tuple(ctx.attr("steps") or (1,) * len(starts)),
    }
    ctx.emit_final(LayoutPrimitive("Slice", **attrs), [ctx.input(0)])


@fission_rule("Pad")
def _pad(ctx: FissionContext) -> None:
    ctx.emit_final(
        LayoutPrimitive("Pad", pads=tuple(ctx.attr("pads")), value=float(ctx.attr("value", 0.0))),
        [ctx.input(0)],
    )


@fission_rule("Concat")
def _concat(ctx: FissionContext) -> None:
    ctx.emit_final(
        LayoutPrimitive("Concat", axis=int(ctx.attr("axis", 0))),
        [ctx.input(i) for i in range(ctx.num_inputs)],
    )


@fission_rule("Resize")
def _resize(ctx: FissionContext) -> None:
    ctx.emit_final(
        LayoutPrimitive(
            "Resize",
            sizes=ctx.output_type(0).shape,
            mode=str(ctx.attr("mode", "nearest")),
        ),
        [ctx.input(0)],
    )


@fission_rule("Split")
def _split(ctx: FissionContext) -> None:
    """Split along an axis becomes one Slice primitive per output."""
    x = ctx.input(0)
    x_type = ctx.input_type(0)
    axis = int(ctx.attr("axis", 0))
    if axis < 0:
        axis += x_type.rank
    sizes = tuple(ctx.attr("split") or ())
    if not sizes:
        count = len(ctx.node.outputs)
        sizes = (x_type.shape[axis] // count,) * count
    offset = 0
    for index, size in enumerate(sizes):
        ctx.emit(
            LayoutPrimitive(
                "Slice",
                starts=(offset,),
                ends=(offset + size,),
                axes=(axis,),
                steps=(1,),
            ),
            [x],
            output=ctx.output(index),
        )
        offset += size


@fission_rule("Expand")
def _expand(ctx: FissionContext) -> None:
    """Expand becomes a chain of broadcasts over every grown axis."""
    x = ctx.input(0)
    in_shape = ctx.input_type(0).shape
    out_shape = ctx.output_type(0).shape
    # Align ranks by prepending unit dims with a reshape.
    if len(in_shape) < len(out_shape):
        in_shape = (1,) * (len(out_shape) - len(in_shape)) + in_shape
        x = ctx.emit(LayoutPrimitive("Reshape", shape=in_shape), [x])
    grown = [axis for axis, (src, dst) in enumerate(zip(in_shape, out_shape)) if src != dst]
    if not grown:
        ctx.emit_final(LayoutPrimitive("Reshape", shape=out_shape), [x])
        return
    for position, axis in enumerate(grown):
        prim = BroadcastPrimitive(axis=axis, size=out_shape[axis])
        if position == len(grown) - 1:
            ctx.emit_final(prim, [x])
        else:
            x = ctx.emit(prim, [x])
    # Sanity: the final emitted tensor must have the declared number of elements.
    assert math.prod(out_shape) == ctx.output_type(0).num_elements
