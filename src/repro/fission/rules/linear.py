"""Fission rules for compute-intensive (linear transformation) operators.

Convolutions and matrix multiplications stay as single linear primitives —
their bias addition is kept inside the primitive for Conv (cuDNN fuses it) and
emitted as an elementwise Add for Gemm so it can be fused into neighbouring
memory-bound kernels.
"""

from __future__ import annotations

from ...primitives.elementwise import ElementwisePrimitive
from ...primitives.layout import LayoutPrimitive
from ...primitives.linear import ConvPrimitive, ConvTransposePrimitive, MatMulPrimitive
from ..context import FissionContext
from ..registry import fission_rule

__all__ = []


@fission_rule("Conv")
def _conv(ctx: FissionContext) -> None:
    inputs = [ctx.input(i) for i in range(ctx.num_inputs)]
    ctx.emit_final(
        ConvPrimitive(
            strides=tuple(ctx.attr("strides")),
            pads=tuple(ctx.attr("pads") or (0, 0, 0, 0)),
            dilations=tuple(ctx.attr("dilations", (1, 1))),
            group=int(ctx.attr("group", 1)),
        ),
        inputs,
    )


@fission_rule("ConvTranspose")
def _conv_transpose(ctx: FissionContext) -> None:
    inputs = [ctx.input(i) for i in range(ctx.num_inputs)]
    ctx.emit_final(
        ConvTransposePrimitive(
            strides=tuple(ctx.attr("strides")),
            pads=tuple(ctx.attr("pads") or (0, 0, 0, 0)),
            output_padding=tuple(ctx.attr("output_padding", (0, 0))),
            group=int(ctx.attr("group", 1)),
        ),
        inputs,
    )


@fission_rule("MatMul")
def _matmul(ctx: FissionContext) -> None:
    ctx.emit_final(MatMulPrimitive(), [ctx.input(0), ctx.input(1)])


@fission_rule("Gemm")
def _gemm(ctx: FissionContext) -> None:
    a, b = ctx.input(0), ctx.input(1)
    if bool(ctx.attr("trans_a", False)):
        rank = ctx.ttype(a).rank
        a = ctx.emit(LayoutPrimitive("Transpose", perm=(rank - 1, rank - 2)), [a])
    if bool(ctx.attr("trans_b", False)):
        rank = ctx.ttype(b).rank
        b = ctx.emit(LayoutPrimitive("Transpose", perm=(rank - 1, rank - 2)), [b])
    if ctx.num_inputs >= 3:
        product = ctx.emit(MatMulPrimitive(), [a, b])
        ctx.emit_final(ElementwisePrimitive("Add"), [product, ctx.input(2)])
    else:
        ctx.emit_final(MatMulPrimitive(), [a, b])
