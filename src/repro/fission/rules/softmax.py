"""Operator fission rule for Softmax (Figure 3 of the paper).

Softmax mixes three parallelism patterns — elementwise exponentiation,
vector-wise aggregation and vector-wise broadcast — which is why running it in
one kernel is suboptimal (§1).  The paper's rule decomposes it into::

    Softmax(x)  →  ElementWise(Exp) → Reduce(Sum) → Broadcast → ElementWise(Div)

The broadcast is explicit here (matching Figure 3) so that the TASO-style
transformation of §3 can later replace Reduce(Sum) with a MatMul against an
all-ones vector and swap the division past a following MatMul.
"""

from __future__ import annotations

from ...primitives.elementwise import ElementwisePrimitive
from ...primitives.reduce_broadcast import BroadcastPrimitive, ReducePrimitive
from ..context import FissionContext
from ..registry import fission_rule

__all__ = []


@fission_rule("Softmax")
def _softmax(ctx: FissionContext) -> None:
    x = ctx.input(0)
    x_type = ctx.input_type(0)
    axis = int(ctx.attr("axis", -1))
    if axis < 0:
        axis += x_type.rank
    size = x_type.shape[axis]

    exp = ctx.emit(ElementwisePrimitive("Exp"), [x])
    total = ctx.emit(ReducePrimitive("Sum", axes=(axis,), keepdims=True), [exp])
    spread = ctx.emit(BroadcastPrimitive(axis=axis, size=size), [total])
    ctx.emit_final(ElementwisePrimitive("Div"), [exp, spread])
