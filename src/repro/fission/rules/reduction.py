"""Fission rules for reduction and pooling operators."""

from __future__ import annotations


from ...primitives.reduce_broadcast import ReducePrimitive, WindowReducePrimitive
from ..context import FissionContext
from ..registry import fission_rule

__all__ = []

_REDUCE_OP = {"ReduceSum": "Sum", "ReduceMean": "Mean", "ReduceMax": "Max"}


@fission_rule("ReduceSum", "ReduceMean", "ReduceMax")
def _reduce(ctx: FissionContext) -> None:
    axes = tuple(ctx.attr("axes") or (-1,))
    keepdims = bool(ctx.attr("keepdims", True))
    ctx.emit_final(
        ReducePrimitive(_REDUCE_OP[ctx.node.op_type], axes=axes, keepdims=keepdims),
        [ctx.input(0)],
    )


@fission_rule("MaxPool", "AveragePool")
def _pool(ctx: FissionContext) -> None:
    op = "Max" if ctx.node.op_type == "MaxPool" else "Mean"
    ctx.emit_final(
        WindowReducePrimitive(
            op,
            kernel=tuple(ctx.attr("kernel_shape")),
            strides=tuple(ctx.attr("strides")),
            pads=tuple(ctx.attr("pads") or (0, 0, 0, 0)),
        ),
        [ctx.input(0)],
    )


@fission_rule("GlobalAveragePool")
def _global_average_pool(ctx: FissionContext) -> None:
    rank = ctx.input_type(0).rank
    ctx.emit_final(
        ReducePrimitive("Mean", axes=tuple(range(2, rank)), keepdims=True), [ctx.input(0)]
    )
