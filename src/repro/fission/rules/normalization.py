"""Fission rules for normalization operators.

These follow the InstanceNorm decomposition shown in Figure 12b of the paper:
the statistics are computed with reduce primitives and the affine part is a
chain of elementwise primitives, which lets Korch fuse the tail of the
normalization into the following ReLU/Pad kernels (the Candy case study).

Per the paper's footnote 3, elementwise primitives broadcast size-1 axes
implicitly (ONNX semantics), so no explicit Broadcast primitive is emitted
between the reduced statistics and the elementwise chain.
"""

from __future__ import annotations

from ...primitives.elementwise import ElementwisePrimitive
from ...primitives.layout import LayoutPrimitive
from ...primitives.reduce_broadcast import ReducePrimitive
from ..context import FissionContext
from ..registry import fission_rule

__all__ = []


def _channel_view(ctx: FissionContext, tensor: str, data_rank: int, channel_axis: int = 1) -> str:
    """Reshape a per-channel (C,) parameter so it broadcasts against the data."""
    ttype = ctx.ttype(tensor)
    if ttype.rank == data_rank:
        return tensor
    channels = ttype.num_elements
    shape = [1] * data_rank
    shape[channel_axis] = channels
    return ctx.emit(LayoutPrimitive("Reshape", shape=tuple(shape)), [tensor])


def _normalize_core(ctx: FissionContext, x: str, axes: tuple[int, ...], epsilon: float) -> str:
    """Emit mean/variance normalization of ``x`` over ``axes``; returns the
    normalized tensor name (before scale/bias)."""
    mean = ctx.emit(ReducePrimitive("Mean", axes=axes, keepdims=True), [x])
    centered = ctx.emit(ElementwisePrimitive("Sub"), [x, mean])
    squared = ctx.emit(ElementwisePrimitive("Mul"), [centered, centered])
    variance = ctx.emit(ReducePrimitive("Mean", axes=axes, keepdims=True), [squared])
    eps = ctx.scalar(float(epsilon), like=x)
    shifted = ctx.emit(ElementwisePrimitive("Add"), [variance, eps])
    std = ctx.emit(ElementwisePrimitive("Sqrt"), [shifted])
    return ctx.emit(ElementwisePrimitive("Div"), [centered, std])


@fission_rule("InstanceNormalization")
def _instance_norm(ctx: FissionContext) -> None:
    x = ctx.input(0)
    rank = ctx.input_type(0).rank
    axes = tuple(range(2, rank))
    normalized = _normalize_core(ctx, x, axes, float(ctx.attr("epsilon", 1e-5)))
    if ctx.num_inputs >= 3:
        scale = _channel_view(ctx, ctx.input(1), rank)
        bias = _channel_view(ctx, ctx.input(2), rank)
        scaled = ctx.emit(ElementwisePrimitive("Mul"), [normalized, scale])
        ctx.emit_final(ElementwisePrimitive("Add"), [scaled, bias])
    else:
        ctx.emit_final(ElementwisePrimitive("Identity"), [normalized])


@fission_rule("LayerNormalization")
def _layer_norm(ctx: FissionContext) -> None:
    x = ctx.input(0)
    x_type = ctx.input_type(0)
    axis = int(ctx.attr("axis", -1))
    if axis < 0:
        axis += x_type.rank
    normalized = _normalize_core(ctx, x, (axis,), float(ctx.attr("epsilon", 1e-5)))
    if ctx.num_inputs >= 3 and axis == x_type.rank - 1:
        # Scale/bias along the last axis broadcast without a reshape.
        scaled = ctx.emit(ElementwisePrimitive("Mul"), [normalized, ctx.input(1)])
        ctx.emit_final(ElementwisePrimitive("Add"), [scaled, ctx.input(2)])
    elif ctx.num_inputs >= 3:
        scale = _channel_view(ctx, ctx.input(1), x_type.rank, axis)
        bias = _channel_view(ctx, ctx.input(2), x_type.rank, axis)
        scaled = ctx.emit(ElementwisePrimitive("Mul"), [normalized, scale])
        ctx.emit_final(ElementwisePrimitive("Add"), [scaled, bias])
    else:
        ctx.emit_final(ElementwisePrimitive("Identity"), [normalized])


@fission_rule("GroupNormalization")
def _group_norm(ctx: FissionContext) -> None:
    """GroupNorm: reshape into groups, normalize, reshape back, affine."""
    x = ctx.input(0)
    x_type = ctx.input_type(0)
    n, c = x_type.shape[0], x_type.shape[1]
    spatial = x_type.shape[2:]
    groups = int(ctx.attr("num_groups", 32))
    grouped_shape = (n, groups, c // groups) + spatial
    grouped = ctx.emit(LayoutPrimitive("Reshape", shape=grouped_shape), [x])
    axes = tuple(range(2, len(grouped_shape)))
    normalized = _normalize_core(ctx, grouped, axes, float(ctx.attr("epsilon", 1e-5)))
    flat = ctx.emit(LayoutPrimitive("Reshape", shape=x_type.shape), [normalized])
    if ctx.num_inputs >= 3:
        scale = _channel_view(ctx, ctx.input(1), x_type.rank)
        bias = _channel_view(ctx, ctx.input(2), x_type.rank)
        scaled = ctx.emit(ElementwisePrimitive("Mul"), [flat, scale])
        ctx.emit_final(ElementwisePrimitive("Add"), [scaled, bias])
    else:
        ctx.emit_final(ElementwisePrimitive("Identity"), [flat])


@fission_rule("BatchNormalization")
def _batch_norm(ctx: FissionContext) -> None:
    """Inference-mode BatchNorm using running statistics.

    ``y = scale * (x - running_mean) / sqrt(running_var + eps) + bias``; all
    four parameters are per-channel vectors reshaped to broadcast over NCHW.
    """
    x = ctx.input(0)
    rank = ctx.input_type(0).rank
    scale = _channel_view(ctx, ctx.input(1), rank)
    bias = _channel_view(ctx, ctx.input(2), rank)
    mean = _channel_view(ctx, ctx.input(3), rank)
    var = _channel_view(ctx, ctx.input(4), rank)
    eps = ctx.scalar(float(ctx.attr("epsilon", 1e-5)), like=x)

    centered = ctx.emit(ElementwisePrimitive("Sub"), [x, mean])
    shifted = ctx.emit(ElementwisePrimitive("Add"), [var, eps])
    std = ctx.emit(ElementwisePrimitive("Sqrt"), [shifted])
    normalized = ctx.emit(ElementwisePrimitive("Div"), [centered, std])
    scaled = ctx.emit(ElementwisePrimitive("Mul"), [normalized, scale])
    ctx.emit_final(ElementwisePrimitive("Add"), [scaled, bias])
