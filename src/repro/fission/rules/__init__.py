"""Operator fission rule modules; importing them registers the rules."""

from . import elementwise, layout, linear, normalization, opaque, reduction, softmax

__all__ = [
    "elementwise",
    "layout",
    "linear",
    "normalization",
    "opaque",
    "reduction",
    "softmax",
]
