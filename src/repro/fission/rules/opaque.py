"""Fission rules for operators outside the primitive algebra.

Per §3 ("Supporting new operators"), operators such as TopK are wrapped into
opaque primitives: the rest of the graph is still optimized, but the opaque
node always executes in its own kernel.
"""

from __future__ import annotations

import numpy as np

from ...primitives.opaque import OpaquePrimitive
from ..context import FissionContext
from ..registry import fission_rule

__all__ = []


@fission_rule("TopK")
def _topk(ctx: FissionContext) -> None:
    x = ctx.input(0)
    k = int(ctx.attr("k", 1))
    axis = int(ctx.attr("axis", -1))

    def _values(inputs):
        (data,) = inputs
        return np.take(np.sort(data, axis=axis), range(-1, -k - 1, -1), axis=axis)

    def _indices(inputs):
        (data,) = inputs
        order = np.argsort(data, axis=axis)
        return np.take(order, range(-1, -k - 1, -1), axis=axis)

    ctx.emit(
        OpaquePrimitive("TopK.values", ctx.output_type(0), compute_fn=_values, k=k, axis=axis),
        [x],
        output=ctx.output(0),
    )
    ctx.emit(
        OpaquePrimitive("TopK.indices", ctx.output_type(1), compute_fn=_indices, k=k, axis=axis),
        [x],
        output=ctx.output(1),
    )
