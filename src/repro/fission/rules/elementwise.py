"""Fission rules for simple and composite elementwise operators.

Simple elementwise operators (Add, Relu, ...) map one-to-one onto an
elementwise primitive.  Composite activations (GELU, SiLU, Mish, HardSwish)
are decomposed into their elementwise algebra so that each piece can be fused
independently with neighbouring primitives.
"""

from __future__ import annotations

import math

from ...primitives.elementwise import ElementwisePrimitive
from ..context import FissionContext
from ..registry import fission_rule

__all__ = []


@fission_rule("Add", "Sub", "Mul", "Div", "Pow", "Maximum", "Minimum")
def _binary_elementwise(ctx: FissionContext) -> None:
    ctx.emit_final(ElementwisePrimitive(ctx.node.op_type), [ctx.input(0), ctx.input(1)])


@fission_rule(
    "Relu", "Sigmoid", "Tanh", "Exp", "Log", "Sqrt", "Erf", "Neg",
    "Reciprocal", "Identity", "Softplus",
)
def _unary_elementwise(ctx: FissionContext) -> None:
    ctx.emit_final(ElementwisePrimitive(ctx.node.op_type), [ctx.input(0)])


@fission_rule("LeakyRelu")
def _leaky_relu(ctx: FissionContext) -> None:
    ctx.emit_final(
        ElementwisePrimitive("LeakyRelu", alpha=float(ctx.attr("alpha", 0.1))), [ctx.input(0)]
    )


@fission_rule("Clip")
def _clip(ctx: FissionContext) -> None:
    ctx.emit_final(
        ElementwisePrimitive(
            "Clip", min=float(ctx.attr("min", 0.0)), max=float(ctx.attr("max", 6.0))
        ),
        [ctx.input(0)],
    )


@fission_rule("Gelu")
def _gelu(ctx: FissionContext) -> None:
    """Exact GELU: 0.5 * x * (1 + erf(x / sqrt(2)))."""
    x = ctx.input(0)
    inv_sqrt2 = ctx.scalar(1.0 / math.sqrt(2.0), like=x)
    one = ctx.scalar(1.0, like=x)
    half = ctx.scalar(0.5, like=x)
    scaled = ctx.emit(ElementwisePrimitive("Mul"), [x, inv_sqrt2])
    erf = ctx.emit(ElementwisePrimitive("Erf"), [scaled])
    shifted = ctx.emit(ElementwisePrimitive("Add"), [erf, one])
    gated = ctx.emit(ElementwisePrimitive("Mul"), [x, shifted])
    ctx.emit_final(ElementwisePrimitive("Mul"), [gated, half])


@fission_rule("Silu")
def _silu(ctx: FissionContext) -> None:
    """SiLU / Swish: x * sigmoid(x)."""
    x = ctx.input(0)
    gate = ctx.emit(ElementwisePrimitive("Sigmoid"), [x])
    ctx.emit_final(ElementwisePrimitive("Mul"), [x, gate])


@fission_rule("Mish")
def _mish(ctx: FissionContext) -> None:
    """Mish: x * tanh(softplus(x)) (YOLOv4's activation)."""
    x = ctx.input(0)
    soft = ctx.emit(ElementwisePrimitive("Softplus"), [x])
    gate = ctx.emit(ElementwisePrimitive("Tanh"), [soft])
    ctx.emit_final(ElementwisePrimitive("Mul"), [x, gate])


@fission_rule("HardSwish")
def _hard_swish(ctx: FissionContext) -> None:
    """HardSwish: x * clip(x + 3, 0, 6) / 6 (EfficientViT backbone)."""
    x = ctx.input(0)
    three = ctx.scalar(3.0, like=x)
    sixth = ctx.scalar(1.0 / 6.0, like=x)
    shifted = ctx.emit(ElementwisePrimitive("Add"), [x, three])
    clipped = ctx.emit(ElementwisePrimitive("Clip", min=0.0, max=6.0), [shifted])
    gated = ctx.emit(ElementwisePrimitive("Mul"), [x, clipped])
    ctx.emit_final(ElementwisePrimitive("Mul"), [gated, sixth])
