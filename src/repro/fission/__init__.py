"""Operator fission: decomposing operators into tensor algebra primitives (§3)."""

from .context import FissionContext
from .engine import FissionEngine, FissionReport, apply_operator_fission
from .registry import FISSION_RULES, fission_rule, get_fission_rule, register_fission_rule

__all__ = [
    "FissionContext",
    "FissionEngine",
    "FissionReport",
    "apply_operator_fission",
    "FISSION_RULES",
    "fission_rule",
    "get_fission_rule",
    "register_fission_rule",
]
