"""Operator fission engine (§3 of the paper).

The engine walks an operator-level :class:`~repro.ir.graph.Graph` in
topological order and applies the registered fission rule for every node,
producing a functionally equivalent :class:`~repro.primitives.graph.PrimitiveGraph`.
Operator-level tensor names are preserved, so the primitive graph can be
verified numerically against the original graph tensor by tensor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.graph import Graph
from ..primitives.graph import PrimitiveGraph
from .context import FissionContext
from .registry import FISSION_RULES

# Importing the rule modules populates the registry.
from .rules import elementwise, layout, linear, normalization, opaque, reduction, softmax  # noqa: F401

__all__ = ["FissionEngine", "FissionReport", "apply_operator_fission"]


@dataclass
class FissionReport:
    """Accounting of one fission run, used by reports and Table 2."""

    num_operators: int = 0
    num_primitives: int = 0
    primitives_per_operator: dict[str, int] = field(default_factory=dict)
    expanded_operators: dict[str, int] = field(default_factory=dict)

    @property
    def expansion_ratio(self) -> float:
        """Average number of primitives emitted per operator."""
        if not self.num_operators:
            return 0.0
        return self.num_primitives / self.num_operators


class FissionEngine:
    """Applies rule-based operator fission to a computation graph."""

    def __init__(self, rules: dict | None = None) -> None:
        self._rules = dict(FISSION_RULES if rules is None else rules)

    def supports(self, op_type: str) -> bool:
        """Whether a fission rule exists for ``op_type``."""
        return op_type in self._rules

    def run(self, graph: Graph) -> tuple[PrimitiveGraph, FissionReport]:
        """Decompose ``graph`` into a primitive graph plus a report."""
        pg = PrimitiveGraph(f"{graph.name}.primitives")
        report = FissionReport()
        # Operator-level tensor names are reused verbatim in the primitive
        # graph; reserve them so generated intermediate names cannot collide.
        pg.reserve_names(graph.tensors)

        for name in graph.inputs:
            pg.add_input(name, graph.tensor_type(name))
        for name, ttype in graph.params.items():
            pg.add_param(name, ttype)
        for name, value in graph.constants.items():
            pg.add_constant(name, value)

        for node in graph.topological_order():
            rule = self._rules.get(node.op_type)
            if rule is None:
                raise KeyError(
                    f"no operator fission rule registered for {node.op_type!r} "
                    f"(node {node.name!r}); known rules: {sorted(self._rules)[:10]}..."
                )
            before = len(pg.nodes)
            ctx = FissionContext(node, graph, pg)
            rule(ctx)
            emitted = len(pg.nodes) - before
            self._check_outputs_produced(node, pg)
            report.num_operators += 1
            report.num_primitives += emitted
            report.primitives_per_operator[node.name] = emitted
            report.expanded_operators[node.op_type] = (
                report.expanded_operators.get(node.op_type, 0) + emitted
            )

        for name in graph.outputs:
            pg.add_output(name)
        pg.validate()
        return pg, report

    @staticmethod
    def _check_outputs_produced(node, pg: PrimitiveGraph) -> None:
        for tensor in node.outputs:
            if pg.producer(tensor) is None:
                raise ValueError(
                    f"fission rule for {node.op_type!r} did not produce output {tensor!r} "
                    f"of node {node.name!r}"
                )


def apply_operator_fission(graph: Graph) -> PrimitiveGraph:
    """Convenience wrapper returning only the primitive graph."""
    pg, _ = FissionEngine().run(graph)
    return pg
