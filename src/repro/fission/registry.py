"""Registry of operator fission rules.

A fission rule is a callable ``rule(ctx: FissionContext) -> None`` that emits
primitives into ``ctx.pg`` and must produce every declared output tensor of
the operator (``ctx.output(i)``) exactly once.  Rules are registered per
operator type; the engine errors loudly when an operator has no rule, which is
the behaviour the paper describes (developers must specify a rule for every
operator, §3).
"""

from __future__ import annotations

from typing import Callable

from .context import FissionContext

__all__ = ["FissionRule", "FISSION_RULES", "register_fission_rule", "fission_rule", "get_fission_rule"]

FissionRule = Callable[[FissionContext], None]

FISSION_RULES: dict[str, FissionRule] = {}


def register_fission_rule(op_type: str, rule: FissionRule) -> FissionRule:
    """Register ``rule`` for ``op_type``; duplicate registration is an error."""
    if op_type in FISSION_RULES:
        raise ValueError(f"fission rule for {op_type!r} already registered")
    # korch-lint: ignore[conc/global-mutation] import-time registration only
    FISSION_RULES[op_type] = rule
    return rule


def fission_rule(*op_types: str) -> Callable[[FissionRule], FissionRule]:
    """Decorator form of :func:`register_fission_rule` for one or more ops."""

    def decorator(rule: FissionRule) -> FissionRule:
        for op_type in op_types:
            register_fission_rule(op_type, rule)
        return rule

    return decorator


def get_fission_rule(op_type: str) -> FissionRule:
    """Look up the rule for ``op_type``."""
    try:
        return FISSION_RULES[op_type]
    except KeyError:
        raise KeyError(
            f"no operator fission rule registered for {op_type!r}; "
            f"known rules: {sorted(FISSION_RULES)}"
        ) from None
