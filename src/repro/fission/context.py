"""Helper context handed to operator fission rules.

A fission rule translates one operator-level node into primitives.  The
context exposes the node being expanded, the destination primitive graph, and
small emission helpers so that rules read close to the figures in the paper
(e.g. Figure 3's Softmax rule is four ``emit`` calls).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..ir.graph import Graph, Node
from ..ir.tensor_type import TensorType
from ..primitives.base import Primitive
from ..primitives.graph import PrimitiveGraph, PrimitiveNode

__all__ = ["FissionContext"]


class FissionContext:
    """State available while expanding one operator into primitives."""

    def __init__(self, node: Node, graph: Graph, pg: PrimitiveGraph) -> None:
        self.node = node
        self.graph = graph
        self.pg = pg

    # ------------------------------------------------------------ node info
    def input(self, index: int = 0) -> str:
        """Tensor name of the operator's ``index``-th input (same name in the
        primitive graph)."""
        return self.node.inputs[index]

    @property
    def num_inputs(self) -> int:
        return len(self.node.inputs)

    def output(self, index: int = 0) -> str:
        """Declared name of the operator's ``index``-th output tensor."""
        return self.node.outputs[index]

    def attr(self, key: str, default: Any = None) -> Any:
        """Operator attribute with fall-back to the registered default."""
        return self.node.attr(key, default)

    def ttype(self, tensor: str) -> TensorType:
        """Type of any tensor already declared in the primitive graph."""
        return self.pg.tensor_type(tensor)

    def input_type(self, index: int = 0) -> TensorType:
        return self.ttype(self.input(index))

    def output_type(self, index: int = 0) -> TensorType:
        """Type the operator-level graph declared for the output."""
        return self.graph.tensor_type(self.output(index))

    # ------------------------------------------------------------- emission
    def emit(
        self,
        prim: Primitive,
        inputs: Sequence[str],
        output: str | None = None,
    ) -> str:
        """Add a primitive node; returns the produced tensor name.

        Pass ``output=self.output()`` for the primitive that produces the
        operator's declared result so downstream operators connect by name.
        """
        node = self.pg.add_node(prim, inputs, output=output, source_op=self.node.name)
        return node.output

    def emit_final(self, prim: Primitive, inputs: Sequence[str], index: int = 0) -> str:
        """Emit the primitive producing the operator's ``index``-th output."""
        return self.emit(prim, inputs, output=self.output(index))

    def scalar(self, value: float, like: str | None = None) -> str:
        """Declare (or reuse) a scalar constant and return its tensor name.

        The constant dtype follows ``like``'s tensor dtype when given, so
        elementwise arithmetic stays in the model's precision.
        """
        dtype = self.ttype(like).dtype if like else self.input_type().dtype
        name = f"const_{self.node.name}_{value!r}_{dtype.value}"
        if name not in self.pg.constants:
            self.pg.add_constant(name, np.array(value, dtype=dtype.to_numpy()))
        return name

    def constant(self, name_hint: str, value: np.ndarray) -> str:
        """Declare a (small) constant tensor, e.g. the all-ones vector used by
        the ReduceSum→MatMul transformation."""
        name = self.pg.unique_name(f"const_{self.node.name}_{name_hint}")
        self.pg.add_constant(name, value)
        return name

    def nodes_emitted(self) -> list[PrimitiveNode]:
        """Primitive nodes emitted so far for this operator."""
        return [n for n in self.pg.nodes if n.source_op == self.node.name]
