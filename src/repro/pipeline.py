"""The end-to-end Korch pipeline (Figure 1).

``KorchPipeline.optimize`` runs the full flow on an operator-level graph:

1. **Graph partitioner** — split the computation graph into subgraphs.
2. **Operator fission** — decompose each subgraph into a primitive graph.
3. **Primitive graph optimizer** — apply TASO-style substitutions (optional).
4. **Kernel identifier + orchestration optimizer** — enumerate candidate
   kernels, profile them, and solve the BLP for the optimal strategy.
5. **Executable generator** — stitch selected kernels into an executable.

The result aggregates per-partition strategies into a model-level executable
with a predicted end-to-end latency (the sum of kernel latencies, Eq. 2) and
the statistics used by Table 2.

Two orthogonal accelerations sit on top of the paper's flow:

* **Persistent caching** (``KorchConfig.cache_dir``): kernel profiles and
  whole-model plans are stored content-addressed on disk
  (:mod:`repro.cache`), so repeated optimization of structurally identical
  kernels — across partitions, models, processes and machines — touches the
  backend latency models exactly once, and a repeated (graph, gpu, config)
  triple skips candidate enumeration and the BLP solve entirely.
* **Parallel partition orchestration** (``KorchConfig.num_workers``):
  partitions are independent optimization problems, so steps 2–5 run
  concurrently in a thread pool; results are collected in partition order and
  are identical to a serial run.
"""

from __future__ import annotations

import dataclasses
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .backends import KernelBackend, TuningTimeModel, TuningTimeReport, default_korch_backends
from .cache import (
    CacheStats,
    CacheStore,
    KernelPlan,
    ModelPlan,
    PartitionPlan,
    PersistentProfileCache,
    PlanCache,
    backend_fingerprint,
    plan_key,
)
from .fission import FissionEngine, FissionReport
from .gpu.profiler import KernelProfiler, ProfilerStats
from .gpu.specs import GpuSpec, get_gpu
from .ir.graph import Graph
from .ir.serialization import graph_to_dict
from .orchestration import (
    KernelIdentifierConfig,
    KernelOrchestrationOptimizer,
    OrchestrationResult,
)
from .partition import GraphPartitioner, Partition, PartitionConfig
from .runtime.executable import Executable, ModelExecutable
from .transforms import GraphOptimizerConfig, GraphOptimizerReport, PrimitiveGraphOptimizer

__all__ = [
    "KorchConfig",
    "PartitionResult",
    "CacheReport",
    "KorchResult",
    "KorchPipeline",
    "optimize_model",
]


# Stores (and their plan caches) are shared per cache directory so every
# pipeline in the process reuses one SQLite connection and one in-memory plan
# tier — this is what makes back-to-back ``optimize_model`` calls warm.
_STORE_LOCK = threading.Lock()
_STORES: dict[str, CacheStore] = {}
_PLAN_CACHES: dict[str, PlanCache] = {}


def _shared_store(cache_dir: str | Path, max_entries: int) -> tuple[CacheStore, PlanCache]:
    key = str(Path(cache_dir).resolve())
    with _STORE_LOCK:
        store = _STORES.get(key)
        if store is None:
            store = CacheStore(key, max_entries=max_entries)
            _STORES[key] = store
            _PLAN_CACHES[key] = PlanCache(store)
        else:
            # The registry shares one store per directory; honor the most
            # recent cap rather than silently keeping the first one.
            store.max_entries = max(1, int(max_entries))
        return store, _PLAN_CACHES[key]


@dataclass
class KorchConfig:
    """Configuration of the full pipeline."""

    gpu: str | GpuSpec = "V100"
    enable_graph_optimizer: bool = True
    enable_tensorrt_backend: bool = False
    partition: PartitionConfig = field(default_factory=PartitionConfig)
    identifier: KernelIdentifierConfig = field(default_factory=KernelIdentifierConfig)
    graph_optimizer: GraphOptimizerConfig = field(default_factory=GraphOptimizerConfig)
    solver_method: str = "auto"
    solver_time_limit_s: float = 1000.0
    #: Relative optimality gap accepted per subgraph BLP (0 = prove optimal).
    #: The default trades <2% of modeled latency for a large solver speedup.
    solver_mip_rel_gap: float = 0.02
    #: Directory of the persistent profile/plan cache; ``None`` disables
    #: persistence (profiles are still memoized per process, as before).
    cache_dir: str | Path | None = None
    #: Store whole-model plans (in addition to kernel profiles) so repeated
    #: (graph, gpu, config) runs skip enumeration + solving.  Only effective
    #: with ``cache_dir`` set.
    enable_plan_cache: bool = True
    #: Concurrent partition-optimization workers; 1 = serial (the default),
    #: 0 = one worker per CPU.  Results are independent of the worker count.
    num_workers: int = 1
    #: Per-namespace entry cap of the persistent cache (LRU-evicted).
    cache_max_entries: int = 200_000

    def resolve_gpu(self) -> GpuSpec:
        return self.gpu if isinstance(self.gpu, GpuSpec) else get_gpu(self.gpu)

    def resolve_num_workers(self, num_tasks: int) -> int:
        import os

        workers = self.num_workers if self.num_workers > 0 else (os.cpu_count() or 1)
        return max(1, min(workers, num_tasks))

    def fingerprint(self) -> dict:
        """The part of the config that determines optimization *results*.

        Cache and parallelism knobs are deliberately excluded: a plan
        computed serially without a cache is byte-identical to one computed
        by 8 workers with one, so they must share cache keys.
        """
        return {
            "enable_graph_optimizer": self.enable_graph_optimizer,
            "enable_tensorrt_backend": self.enable_tensorrt_backend,
            "partition": dataclasses.asdict(self.partition),
            "identifier": dataclasses.asdict(self.identifier),
            "graph_optimizer": dataclasses.asdict(self.graph_optimizer),
            "solver_method": self.solver_method,
            "solver_time_limit_s": self.solver_time_limit_s,
            "solver_mip_rel_gap": self.solver_mip_rel_gap,
        }


@dataclass
class PartitionResult:
    """Everything produced for one partition."""

    partition: Partition
    fission_report: FissionReport
    optimizer_report: GraphOptimizerReport | None
    orchestration: OrchestrationResult
    executable: Executable

    @property
    def latency_s(self) -> float:
        return self.orchestration.strategy.total_latency_s

    @property
    def num_kernels(self) -> int:
        return self.orchestration.strategy.num_kernels

    @property
    def replayed(self) -> bool:
        """Whether this partition's strategy came from the plan cache."""
        return bool(self.orchestration.extra.get("replayed"))


@dataclass
class CacheReport:
    """Cache and parallelism accounting of one pipeline run."""

    #: "off" (no cache_dir), "miss", "memory-hit" or "disk-hit".
    plan_cache: str = "off"
    #: Partitions whose strategy was replayed from a stored plan.
    partitions_replayed: int = 0
    #: Aggregated profiler statistics across every profiler the run used.
    profiler: ProfilerStats = field(default_factory=ProfilerStats)
    #: Store-level statistics (shared across namespaces).
    store: CacheStats | None = None
    #: Worker threads actually used for partition orchestration.
    num_workers: int = 1

    @property
    def profile_cache_hits(self) -> int:
        return self.profiler.memory_hits + self.profiler.persistent_hits

    @property
    def backend_estimate_calls(self) -> int:
        return self.profiler.backend_estimate_calls


@dataclass
class KorchResult:
    """Model-level result of the Korch pipeline."""

    graph: Graph
    spec: GpuSpec
    partitions: list[PartitionResult]
    executable: ModelExecutable
    tuning: TuningTimeReport
    cache: CacheReport = field(default_factory=CacheReport)

    @property
    def latency_s(self) -> float:
        """Predicted end-to-end latency (sum over partitions and kernels)."""
        return sum(part.latency_s for part in self.partitions)

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def num_kernels(self) -> int:
        return sum(part.num_kernels for part in self.partitions)

    @property
    def num_primitives(self) -> int:
        return sum(len(part.orchestration.strategy.pg.nodes) for part in self.partitions)

    @property
    def num_candidate_kernels(self) -> int:
        return sum(part.orchestration.num_candidates for part in self.partitions)

    def summary(self) -> dict[str, float | int | str]:
        """Flat summary used by reports and benchmarks."""
        return {
            "model": self.graph.name,
            "gpu": self.spec.name,
            "latency_ms": self.latency_ms,
            "num_partitions": len(self.partitions),
            "num_primitives": self.num_primitives,
            "num_candidate_kernels": self.num_candidate_kernels,
            "num_kernels": self.num_kernels,
            "tuning_hours": self.tuning.total_hours,
            "plan_cache": self.cache.plan_cache,
            "partitions_replayed": self.cache.partitions_replayed,
            "profile_cache_hits": self.cache.profile_cache_hits,
            "backend_estimate_calls": self.cache.backend_estimate_calls,
            "num_workers": self.cache.num_workers,
        }


class KorchPipeline:
    """Runs the Figure 1 flow over a computation graph."""

    def __init__(self, config: KorchConfig | None = None, backends: Sequence[KernelBackend] | None = None) -> None:
        self.config = config or KorchConfig()
        self.spec = self.config.resolve_gpu()
        self.backends = list(
            backends
            if backends is not None
            else default_korch_backends(self.config.enable_tensorrt_backend)
        )
        self.partitioner = GraphPartitioner(self.config.partition)
        self.fission = FissionEngine()

        self.store: CacheStore | None = None
        self.plan_cache: PlanCache | None = None
        self.profile_cache: PersistentProfileCache | None = None
        self._graph_opt_cache: PersistentProfileCache | None = None
        if self.config.cache_dir is not None:
            self.store, plan_cache = _shared_store(
                self.config.cache_dir, self.config.cache_max_entries
            )
            if self.config.enable_plan_cache:
                self.plan_cache = plan_cache
            self.profile_cache = PersistentProfileCache(self.store, self.spec, self.backends)
            # The graph optimizer profiles singleton kernels with the default
            # backend set; give it a cache context keyed on that set.
            self._graph_opt_cache = PersistentProfileCache(
                self.store, self.spec, default_korch_backends()
            )

    def _make_graph_optimizer(self) -> PrimitiveGraphOptimizer:
        """Fresh graph optimizer per partition task.

        Its cost-proxy profiler is not tuning-authoritative (Table 2 counts
        candidate profiling, not the optimizer's singleton probes), and a
        fresh instance per task keeps concurrent workers from sharing any
        mutable profiler state.
        """
        profiler = KernelProfiler(
            self.spec,
            persistent_cache=self._graph_opt_cache,
            tuning_authoritative=False,
        )
        return PrimitiveGraphOptimizer(
            self.spec, config=self.config.graph_optimizer, profiler=profiler
        )

    # ------------------------------------------------------------------ api
    def optimize(self, graph: Graph) -> KorchResult:
        """Optimize ``graph`` end to end and return the model-level result."""
        plan_cache_key: str | None = None
        if self.plan_cache is not None:
            plan_cache_key = plan_key(
                graph_to_dict(graph),
                self.spec,
                backend_fingerprint(self.backends),
                self.config.fingerprint(),
            )
            memoized = self.plan_cache.get_result(plan_cache_key)
            if memoized is not None:
                return dataclasses.replace(
                    memoized,
                    cache=dataclasses.replace(memoized.cache, plan_cache="memory-hit"),
                )

        stored_plan: ModelPlan | None = None
        if plan_cache_key is not None:
            stored_plan = self.plan_cache.load(plan_cache_key)

        partitions = self.partitioner.partition(graph)
        if stored_plan is not None and len(stored_plan.partitions) != len(partitions):
            stored_plan = None  # stale partitioning; re-optimize from scratch

        # One tuning-time model for the whole run: structurally identical
        # kernels appearing in *different* partitions are tuned once, which
        # is how the paper's TVM database amortizes Table 2's tuning hours.
        tuning_model = TuningTimeModel()

        num_workers = self.config.resolve_num_workers(len(partitions))
        plans = (
            stored_plan.partitions if stored_plan is not None else [None] * len(partitions)
        )
        tasks = list(zip(partitions, plans))
        if num_workers > 1 and len(tasks) > 1:
            with ThreadPoolExecutor(max_workers=num_workers) as pool:
                outcomes = list(
                    pool.map(lambda t: self._optimize_partition(*t, tuning_model), tasks)
                )
        else:
            outcomes = [self._optimize_partition(*task, tuning_model) for task in tasks]

        results = [outcome[0] for outcome in outcomes]
        tuning = tuning_model.report
        cache = self._cache_report(results, outcomes, num_workers, stored_plan is not None)

        model_executable = ModelExecutable(graph.name, [r.executable for r in results])
        result = KorchResult(
            graph=graph,
            spec=self.spec,
            partitions=results,
            executable=model_executable,
            tuning=tuning,
            cache=cache,
        )

        if plan_cache_key is not None:
            if cache.partitions_replayed < len(results):
                # Cold or partially-replayed run: (re)store the full plan.
                self.plan_cache.save(plan_cache_key, self._plan_of(results))
            self.plan_cache.put_result(plan_cache_key, result)
        return result

    # ------------------------------------------------------------ internals
    def _optimize_partition(
        self,
        partition: Partition,
        plan: PartitionPlan | None,
        tuning_model: TuningTimeModel,
    ) -> tuple[PartitionResult, ProfilerStats]:
        """Run fission → graph optimizer → orchestration for one partition.

        Self-contained (fresh orchestration optimizer per call) so partitions
        can run on concurrent workers; shared state is limited to the
        thread-safe persistent cache and the graph optimizer's memoized
        singleton profiles.
        """
        pg, fission_report = self.fission.run(partition.graph)
        optimizer_report = None
        graph_optimizer = None
        if self.config.enable_graph_optimizer:
            graph_optimizer = self._make_graph_optimizer()
            pg, optimizer_report = graph_optimizer.optimize(pg)

        optimizer = KernelOrchestrationOptimizer(
            self.spec,
            backends=self.backends,
            identifier_config=self.config.identifier,
            solver_method=self.config.solver_method,
            solver_time_limit_s=self.config.solver_time_limit_s,
            solver_mip_rel_gap=self.config.solver_mip_rel_gap,
            persistent_cache=self.profile_cache,
            tuning_model=tuning_model,
        )
        orchestration = None
        if plan is not None:
            orchestration = optimizer.replay(pg, plan)
        if orchestration is None:
            orchestration = optimizer.optimize(pg)

        executable = Executable.from_strategy(orchestration.strategy)
        result = PartitionResult(
            partition=partition,
            fission_report=fission_report,
            optimizer_report=optimizer_report,
            orchestration=orchestration,
            executable=executable,
        )
        stats = optimizer.profiler_stats
        if graph_optimizer is not None:
            stats.merge(graph_optimizer.profiler.stats)
        return result, stats

    def _cache_report(self, results, outcomes, num_workers: int, had_stored_plan: bool) -> CacheReport:
        profiler = ProfilerStats()
        for _, stats in outcomes:
            profiler.merge(stats)
        replayed = sum(1 for r in results if r.replayed)
        if self.plan_cache is None:
            status = "off"
        elif replayed == len(results) and (had_stored_plan or not results):
            status = "disk-hit"
        else:
            status = "miss"
        return CacheReport(
            plan_cache=status,
            partitions_replayed=replayed,
            profiler=profiler,
            store=self.store.stats if self.store is not None else None,
            num_workers=num_workers,
        )

    @staticmethod
    def _plan_of(results: list[PartitionResult]) -> ModelPlan:
        """Serialize the solved strategies into a replayable plan."""
        partitions = []
        for result in results:
            strategy = result.orchestration.strategy
            kernels = [
                KernelPlan(
                    node_names=sorted(kernel.node_names),
                    external_inputs=list(kernel.external_inputs),
                    outputs=list(kernel.outputs),
                )
                for kernel in strategy.kernels
            ]
            partitions.append(
                PartitionPlan(
                    kernels=kernels,
                    objective_s=strategy.objective_s,
                    solver_status=strategy.solver_status,
                    solver_method=strategy.solver_method,
                    num_candidates=result.orchestration.num_candidates,
                )
            )
        return ModelPlan(partitions=partitions)


def optimize_model(graph: Graph, gpu: str = "V100", **config_overrides) -> KorchResult:
    """One-call convenience API: optimize ``graph`` for ``gpu`` with defaults.

    With ``cache_dir=...`` in the overrides, repeated calls on an already-seen
    (graph, gpu, config) triple return the stored plan: instantly within a
    process, and via strategy replay (no enumeration, no solving, no backend
    estimates) across processes.
    """
    config = KorchConfig(gpu=gpu, **config_overrides)
    return KorchPipeline(config).optimize(graph)
