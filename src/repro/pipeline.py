"""The end-to-end Korch pipeline (Figure 1) — compatibility layer.

``KorchPipeline.optimize`` runs the full flow on an operator-level graph:

1. **Graph partitioner** — split the computation graph into subgraphs.
2. **Operator fission** — decompose each subgraph into a primitive graph.
3. **Primitive graph optimizer** — apply TASO-style substitutions (optional).
4. **Kernel identifier + orchestration optimizer** — enumerate candidate
   kernels, profile them, and solve the BLP for the optimal strategy.
5. **Executable generator** — stitch selected kernels into an executable.

The implementation lives in :mod:`repro.engine`: the flow is decomposed into
composable stages (fission → graph-opt → identify → profile → solve →
assemble) driven by a long-lived :class:`~repro.engine.KorchEngine` that owns
backends, profiler caches, the persistent store and one worker pool across
many models.  This module keeps the original API: ``KorchPipeline`` is a
thin wrapper building a short-lived engine per instance, ``optimize_model``
a one-call convenience on top, and the result/config dataclasses are
re-exported under their historical import path.

Two orthogonal accelerations sit on top of the paper's flow:

* **Persistent caching** (``KorchConfig.cache_dir``): kernel profiles and
  whole-model plans are stored content-addressed on disk
  (:mod:`repro.cache`), so repeated optimization of structurally identical
  kernels — across partitions, models, processes and machines — touches the
  backend latency models exactly once, and a repeated (graph, gpu, config)
  triple skips candidate enumeration and the BLP solve entirely.
* **Parallel partition orchestration** (``KorchConfig.num_workers``):
  partitions are independent optimization problems, so steps 2–5 run
  concurrently in a thread pool; results are collected in partition order and
  are identical to a serial run.

For multi-model serving — shared profile reuse across models, interleaved
partition scheduling, per-stage instrumentation — use
:class:`repro.engine.KorchEngine` directly.
"""

from __future__ import annotations

from typing import Sequence

from .backends import KernelBackend
from .cache import CacheStore, PlanCache
from .engine import (
    CacheReport,
    EngineStats,
    KorchConfig,
    KorchEngine,
    KorchResult,
    PartitionResult,
)
from .gpu.specs import GpuSpec
from .ir.graph import Graph

__all__ = [
    "KorchConfig",
    "PartitionResult",
    "CacheReport",
    "KorchResult",
    "KorchPipeline",
    "KorchEngine",
    "EngineStats",
    "optimize_model",
]


class KorchPipeline:
    """Runs the Figure 1 flow over a computation graph.

    Compatibility wrapper: each pipeline instance delegates to a short-lived
    :class:`~repro.engine.KorchEngine`.  Without a ``cache_dir`` the engine's
    cross-model profile sharing is disabled, so behavior (including cache
    accounting) matches the original per-model pipeline exactly.
    """

    def __init__(
        self, config: KorchConfig | None = None, backends: Sequence[KernelBackend] | None = None
    ) -> None:
        config = config or KorchConfig()
        self.engine = KorchEngine(
            config, backends, share_profiles=config.cache_dir is not None
        )

    @property
    def config(self) -> KorchConfig:
        return self.engine.config

    @property
    def spec(self) -> GpuSpec:
        return self.engine.spec

    @property
    def backends(self) -> list[KernelBackend]:
        return self.engine.backends

    @property
    def partitioner(self):
        return self.engine.partitioner

    @property
    def fission(self):
        return self.engine.fission

    @property
    def store(self) -> CacheStore | None:
        return self.engine.store

    @property
    def plan_cache(self) -> PlanCache | None:
        return self.engine.plan_cache

    @property
    def profile_cache(self):
        return self.engine.profile_cache

    # ------------------------------------------------------------------ api
    def optimize(self, graph: Graph) -> KorchResult:
        """Optimize ``graph`` end to end and return the model-level result."""
        return self.engine.optimize(graph)

    def close(self) -> None:
        """Release the engine's worker pool (``num_workers`` > 1 keeps its
        threads alive between ``optimize`` calls until closed)."""
        self.engine.close()

    def __enter__(self) -> "KorchPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def optimize_model(graph: Graph, gpu: str = "V100", **config_overrides) -> KorchResult:
    """One-call convenience API: optimize ``graph`` for ``gpu`` with defaults.

    With ``cache_dir=...`` in the overrides, repeated calls on an already-seen
    (graph, gpu, config) triple return the stored plan: instantly within a
    process, and via strategy replay (no enumeration, no solving, no backend
    estimates) across processes.
    """
    config = KorchConfig(gpu=gpu, **config_overrides)
    return KorchPipeline(config).optimize(graph)
