"""The end-to-end Korch pipeline (Figure 1).

``KorchPipeline.optimize`` runs the full flow on an operator-level graph:

1. **Graph partitioner** — split the computation graph into subgraphs.
2. **Operator fission** — decompose each subgraph into a primitive graph.
3. **Primitive graph optimizer** — apply TASO-style substitutions (optional).
4. **Kernel identifier + orchestration optimizer** — enumerate candidate
   kernels, profile them, and solve the BLP for the optimal strategy.
5. **Executable generator** — stitch selected kernels into an executable.

The result aggregates per-partition strategies into a model-level executable
with a predicted end-to-end latency (the sum of kernel latencies, Eq. 2) and
the statistics used by Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .backends import KernelBackend, TuningTimeModel, TuningTimeReport, default_korch_backends
from .fission import FissionEngine, FissionReport
from .gpu.specs import GpuSpec, get_gpu
from .ir.graph import Graph
from .orchestration import (
    KernelIdentifierConfig,
    KernelOrchestrationOptimizer,
    OrchestrationResult,
)
from .partition import GraphPartitioner, Partition, PartitionConfig
from .runtime.executable import Executable, ModelExecutable
from .transforms import GraphOptimizerConfig, GraphOptimizerReport, PrimitiveGraphOptimizer

__all__ = ["KorchConfig", "PartitionResult", "KorchResult", "KorchPipeline", "optimize_model"]


@dataclass
class KorchConfig:
    """Configuration of the full pipeline."""

    gpu: str | GpuSpec = "V100"
    enable_graph_optimizer: bool = True
    enable_tensorrt_backend: bool = False
    partition: PartitionConfig = field(default_factory=PartitionConfig)
    identifier: KernelIdentifierConfig = field(default_factory=KernelIdentifierConfig)
    graph_optimizer: GraphOptimizerConfig = field(default_factory=GraphOptimizerConfig)
    solver_method: str = "auto"
    solver_time_limit_s: float = 1000.0
    #: Relative optimality gap accepted per subgraph BLP (0 = prove optimal).
    #: The default trades <2% of modeled latency for a large solver speedup.
    solver_mip_rel_gap: float = 0.02

    def resolve_gpu(self) -> GpuSpec:
        return self.gpu if isinstance(self.gpu, GpuSpec) else get_gpu(self.gpu)


@dataclass
class PartitionResult:
    """Everything produced for one partition."""

    partition: Partition
    fission_report: FissionReport
    optimizer_report: GraphOptimizerReport | None
    orchestration: OrchestrationResult
    executable: Executable

    @property
    def latency_s(self) -> float:
        return self.orchestration.strategy.total_latency_s

    @property
    def num_kernels(self) -> int:
        return self.orchestration.strategy.num_kernels


@dataclass
class KorchResult:
    """Model-level result of the Korch pipeline."""

    graph: Graph
    spec: GpuSpec
    partitions: list[PartitionResult]
    executable: ModelExecutable
    tuning: TuningTimeReport

    @property
    def latency_s(self) -> float:
        """Predicted end-to-end latency (sum over partitions and kernels)."""
        return sum(part.latency_s for part in self.partitions)

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def num_kernels(self) -> int:
        return sum(part.num_kernels for part in self.partitions)

    @property
    def num_primitives(self) -> int:
        return sum(len(part.orchestration.strategy.pg.nodes) for part in self.partitions)

    @property
    def num_candidate_kernels(self) -> int:
        return sum(part.orchestration.num_candidates for part in self.partitions)

    def summary(self) -> dict[str, float | int | str]:
        """Flat summary used by reports and benchmarks."""
        return {
            "model": self.graph.name,
            "gpu": self.spec.name,
            "latency_ms": self.latency_ms,
            "num_partitions": len(self.partitions),
            "num_primitives": self.num_primitives,
            "num_candidate_kernels": self.num_candidate_kernels,
            "num_kernels": self.num_kernels,
            "tuning_hours": self.tuning.total_hours,
        }


class KorchPipeline:
    """Runs the Figure 1 flow over a computation graph."""

    def __init__(self, config: KorchConfig | None = None, backends: Sequence[KernelBackend] | None = None) -> None:
        self.config = config or KorchConfig()
        self.spec = self.config.resolve_gpu()
        self.backends = list(
            backends
            if backends is not None
            else default_korch_backends(self.config.enable_tensorrt_backend)
        )
        self.partitioner = GraphPartitioner(self.config.partition)
        self.fission = FissionEngine()
        self.graph_optimizer = PrimitiveGraphOptimizer(
            self.spec, config=self.config.graph_optimizer
        )

    # ------------------------------------------------------------------ api
    def optimize(self, graph: Graph) -> KorchResult:
        """Optimize ``graph`` end to end and return the model-level result."""
        partitions = self.partitioner.partition(graph)
        results: list[PartitionResult] = []
        tuning_reports = []

        for partition in partitions:
            pg, fission_report = self.fission.run(partition.graph)
            optimizer_report = None
            if self.config.enable_graph_optimizer:
                pg, optimizer_report = self.graph_optimizer.optimize(pg)

            optimizer = KernelOrchestrationOptimizer(
                self.spec,
                backends=self.backends,
                identifier_config=self.config.identifier,
                solver_method=self.config.solver_method,
                solver_time_limit_s=self.config.solver_time_limit_s,
                solver_mip_rel_gap=self.config.solver_mip_rel_gap,
            )
            orchestration = optimizer.optimize(pg)
            executable = Executable.from_strategy(orchestration.strategy)
            results.append(
                PartitionResult(
                    partition=partition,
                    fission_report=fission_report,
                    optimizer_report=optimizer_report,
                    orchestration=orchestration,
                    executable=executable,
                )
            )
            tuning_reports.append(optimizer.identifier.profiler.tuning_model.report)

        model_executable = ModelExecutable(graph.name, [r.executable for r in results])
        tuning = TuningTimeModel.merge(tuning_reports)
        return KorchResult(
            graph=graph,
            spec=self.spec,
            partitions=results,
            executable=model_executable,
            tuning=tuning,
        )


def optimize_model(graph: Graph, gpu: str = "V100", **config_overrides) -> KorchResult:
    """One-call convenience API: optimize ``graph`` for ``gpu`` with defaults."""
    config = KorchConfig(gpu=gpu, **config_overrides)
    return KorchPipeline(config).optimize(graph)
