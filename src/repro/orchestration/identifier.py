"""Kernel identifier: Algorithm 1 of the paper.

Enumerates execution states with a DFS, derives every convex primitive set
from pairs of states (Theorem 1), attaches possible output sets, profiles
each candidate with the kernel profiler, and returns the surviving candidate
kernels.  Candidates the profiler rejects (no backend can generate them) are
dropped, mirroring the profiler returning ∞ in the paper.

Pruning heuristics (§6.5): a maximum primitive count per kernel, at most one
linear-transformation primitive per kernel, opaque primitives only as
singleton kernels, and (optionally) weak connectivity of the candidate set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..backends import FrameworkEagerBackend, KernelBackend
from ..gpu.profiler import KernelProfiler
from ..gpu.specs import GpuSpec
from ..primitives.graph import PrimitiveGraph, PrimitiveNode
from .bitgraph import BitGraph, convex_masks, mask_sort_key, state_masks
from .execution_state import connected_components, convex_subgraphs_from_states, enumerate_execution_states
from .kernel import CandidateKernel

__all__ = [
    "CandidateSpec",
    "KernelIdentifierConfig",
    "KernelIdentifierReport",
    "KernelIdentifier",
    "enumerate_candidate_specs",
    "enumerate_candidate_specs_reference",
    "spec_key",
]


@dataclass
class KernelIdentifierConfig:
    """Tunable limits of the kernel identifier."""

    #: Maximum primitives one kernel may contain (candidates above are pruned).
    max_kernel_size: int = 10
    #: Maximum linear-transformation primitives per kernel.
    max_linear_per_kernel: int = 1
    #: Hard cap on the execution-state enumeration.
    max_states: int = 20000
    #: Hard cap on the number of profiled candidates (safety valve).
    max_candidates: int = 50000
    #: Require candidate primitive sets to be weakly connected.
    require_connected: bool = True
    #: Also emit one multi-output candidate per convex set (in addition to the
    #: single-output candidates); §8 notes single-output is the paper's
    #: implementation and multi-output its natural extension.
    allow_multi_output: bool = True
    #: Drop candidates that are dominated by a cheaper candidate with the same
    #: external inputs and the same output set: the BLP constraints only see a
    #: kernel's I/O tensors, so replacing a dominated kernel by its dominator
    #: never affects feasibility and cannot increase the objective.
    prune_dominated: bool = True
    #: Maximum primitives per kernel for the segmentation-cover fallback (the
    #: DP over the topological order that guards time-limited BLP solves).
    #: Larger than ``max_kernel_size`` on purpose: vendor libraries fuse long
    #: operator chains into one kernel, and the fallback must be able to
    #: express those covers without paying the exponential enumeration cost.
    cover_max_kernel_size: int = 16
    #: Enable the segmentation-cover fallback in the orchestration optimizer.
    enable_segment_cover: bool = True


@dataclass(frozen=True)
class CandidateSpec:
    """One enumerated candidate kernel, before profiling.

    The identification stage (enumeration + pruning, the combinatorial part
    of Algorithm 1) emits these; the profiling stage prices them.  Keeping
    the two apart lets the engine time and test them independently.
    """

    node_names: frozenset[str]
    outputs: tuple[str, ...]


@dataclass
class KernelIdentifierReport:
    """Statistics of one identification run (feeds Table 2)."""

    num_execution_states: int = 0
    num_convex_sets: int = 0
    num_candidates_considered: int = 0
    num_candidates_profiled: int = 0
    num_candidates_rejected: int = 0
    num_candidates: int = 0
    pruned_by_size: int = 0
    pruned_by_linear: int = 0
    pruned_by_connectivity: int = 0
    pruned_by_dominance: int = 0
    extra: dict[str, int] = field(default_factory=dict)


class KernelIdentifier:
    """Identifies and profiles all candidate kernels of a primitive graph."""

    def __init__(
        self,
        spec: GpuSpec,
        backends: Sequence[KernelBackend] | None = None,
        config: KernelIdentifierConfig | None = None,
        profiler: KernelProfiler | None = None,
        persistent_cache=None,
        tuning_model=None,
    ) -> None:
        self.spec = spec
        self.config = config or KernelIdentifierConfig()
        self.profiler = profiler or KernelProfiler(
            spec, backends, tuning_model, persistent_cache=persistent_cache
        )
        fallback_backends = [FrameworkEagerBackend()]
        fallback_cache = (
            persistent_cache.for_backends(fallback_backends) if persistent_cache is not None else None
        )
        self._fallback_profiler = KernelProfiler(
            spec, fallback_backends, self.profiler.tuning_model, persistent_cache=fallback_cache
        )

    @property
    def profiler_stats(self):
        """Merged cache/estimate statistics of both profilers."""
        from ..gpu.profiler import ProfilerStats

        merged = ProfilerStats()
        merged.merge(self.profiler.stats)
        merged.merge(self._fallback_profiler.stats)
        return merged

    def build_kernel(
        self,
        pg: PrimitiveGraph,
        node_names: Sequence[str],
        outputs: Sequence[str],
        index: int,
    ) -> CandidateKernel | None:
        """Profile one *specific* kernel (used when replaying a cached plan).

        Unlike :meth:`identify`, no enumeration happens: the caller already
        knows the node set and output set.  Returns ``None`` when the node
        names do not exist in ``pg`` or no backend supports the kernel —
        replay treats that as a stale plan.
        """
        nodes_by_name = {node.name: node for node in pg.nodes}
        if any(name not in nodes_by_name for name in node_names):
            return None
        if any(pg.producer(tensor) is None for tensor in outputs):
            return None
        return self._profile_candidate(pg, frozenset(node_names), list(outputs), nodes_by_name, index)

    # ------------------------------------------------------------------ api
    def identify(self, pg: PrimitiveGraph) -> tuple[list[CandidateKernel], KernelIdentifierReport]:
        """Run Algorithm 1 on ``pg``: enumerate candidate specs, then profile."""
        report = KernelIdentifierReport()
        specs = self.enumerate_specs(pg, report)
        return self.profile_specs(pg, specs, report), report

    def enumerate_specs(
        self,
        pg: PrimitiveGraph,
        report: KernelIdentifierReport,
        skip_specs: set | None = None,
    ) -> list[CandidateSpec]:
        """Enumeration half of Algorithm 1; see :func:`enumerate_candidate_specs`."""
        return enumerate_candidate_specs(pg, self.config, report, skip_specs=skip_specs)

    def profile_specs(
        self,
        pg: PrimitiveGraph,
        specs: Sequence[CandidateSpec],
        report: KernelIdentifierReport,
    ) -> list[CandidateKernel]:
        """Profiling half of Algorithm 1: price each spec, drop the
        unsupported ones, keep at most ``max_candidates`` survivors."""
        nodes_by_name = {node.name: node for node in pg.nodes}
        candidates: list[CandidateKernel] = []
        for spec in specs:
            if len(candidates) >= self.config.max_candidates:
                break
            report.num_candidates_considered += 1
            candidate = self._profile_candidate(
                pg, spec.node_names, list(spec.outputs), nodes_by_name, len(candidates)
            )
            report.num_candidates_profiled += 1
            if candidate is None:
                report.num_candidates_rejected += 1
                continue
            candidates.append(candidate)

        if self.config.prune_dominated:
            candidates = self._prune_dominated(candidates, report)
        report.num_candidates = len(candidates)
        return candidates

    @staticmethod
    def _prune_dominated(
        candidates: list[CandidateKernel], report: KernelIdentifierReport
    ) -> list[CandidateKernel]:
        """Keep only the cheapest candidate per (external inputs, outputs) pair."""
        best: dict[tuple, CandidateKernel] = {}
        for candidate in candidates:
            key = (frozenset(candidate.external_inputs), frozenset(candidate.outputs))
            incumbent = best.get(key)
            if incumbent is None or candidate.latency_s < incumbent.latency_s:
                best[key] = candidate
        surviving = sorted(best.values(), key=lambda c: c.index)
        report.pruned_by_dominance = len(candidates) - len(surviving)
        for position, candidate in enumerate(surviving):
            candidate.index = position
        return surviving

    # ------------------------------------------------------------- internals
    def _profile_candidate(
        self,
        pg: PrimitiveGraph,
        node_names: frozenset[str],
        outputs: list[str],
        nodes_by_name: dict[str, PrimitiveNode],
        index: int,
    ) -> CandidateKernel | None:
        order = {node.name: position for position, node in enumerate(pg.topological_order())}
        nodes = sorted((nodes_by_name[name] for name in node_names), key=lambda n: order[n.name])
        external_inputs, _ = pg.subset_io(nodes)
        profile = self.profiler.profile(pg, nodes, external_inputs, outputs)
        if profile is None and len(nodes) == 1:
            # Opaque or otherwise unsupported singleton: fall back to the
            # framework's own kernel so the BLP always has a feasible cover.
            profile = self._fallback_profiler.profile(pg, nodes, external_inputs, outputs)
        if profile is None:
            return None
        return CandidateKernel(
            index=index,
            node_names=node_names,
            nodes=nodes,
            external_inputs=list(external_inputs),
            outputs=list(outputs),
            profile=profile,
            source_ops=frozenset(node.source_op for node in nodes if node.source_op),
        )


# ---------------------------------------------------------------- enumeration
#
# The enumeration half of Algorithm 1 lives at module level, as a pure
# function of picklable inputs (PrimitiveGraph + KernelIdentifierConfig).
# That is what lets the engine's scheduler ship the GIL-bound enumeration to
# a process-pool worker: no profiler, backends, caches or locks ride along.


def spec_key(spec: CandidateSpec) -> tuple[frozenset[str], tuple[str, ...]]:
    """Canonical identity of a candidate spec — the dedup key of the
    enumeration, and the currency of the engine's dominance memo."""
    return (spec.node_names, tuple(sorted(spec.outputs)))


def enumerate_candidate_specs(
    pg: PrimitiveGraph,
    config: KernelIdentifierConfig,
    report: KernelIdentifierReport,
    skip_specs: set[tuple[frozenset[str], tuple[str, ...]]] | None = None,
) -> list[CandidateSpec]:
    """Enumeration half of Algorithm 1, on the bit-packed graph view.

    Emits exactly the spec list of :func:`enumerate_candidate_specs_reference`
    — same specs, same order, same report counters — with the set algebra
    running on :class:`~repro.orchestration.bitgraph.BitGraph` masks instead
    of frozensets (the cold-run hot path; see the bitgraph module docstring
    for why the orders coincide).

    ``skip_specs`` optionally names specs (by :func:`spec_key`) to omit from
    the result — the engine's dominance memo, which has already watched the
    profiler discard them for a structurally identical graph.  Skipped specs
    still count toward the ``max_candidates`` truncation, so a memo-guided
    enumeration is exactly the cold enumeration minus the named specs, never
    a differently-truncated one.
    """
    bg = BitGraph(pg)
    states = state_masks(bg, max_states=config.max_states)
    report.num_execution_states = len(states)

    convex = convex_masks(states, max_size=config.max_kernel_size)
    # Singletons are always candidates, even if the state-pair enumeration
    # was truncated: they are the fallback that keeps the BLP feasible.
    for bit in range(bg.num_nodes):
        convex.add(1 << bit)
    report.num_convex_sets = len(convex)

    specs: list[CandidateSpec] = []
    seen: set[tuple[int, tuple[str, ...]]] = set()
    emitted = 0  # appended + memo-skipped: keeps cap behavior cold-identical
    skipped = 0
    output_tensor = bg.output_tensor
    for node_mask in sorted(convex, key=mask_sort_key):
        if emitted >= config.max_candidates:
            break
        if _prune_node_mask(bg, node_mask, config, report):
            continue
        required = bg.required_output_bits(node_mask)
        if not required:
            continue
        # Variants mirror _candidate_variants: one single-output candidate
        # per required output (restricted to its in-set ancestors), plus the
        # optional all-outputs candidate.
        variants: list[tuple[int, tuple[str, ...]]] = []
        emitted_full = False
        for bit in required:
            restricted = bg.ancestors_within(bit, node_mask)
            variants.append((restricted, (output_tensor[bit],)))
            if restricted == node_mask and len(required) == 1:
                emitted_full = True
        if config.allow_multi_output and len(required) > 1 and not emitted_full:
            variants.append((node_mask, tuple(output_tensor[bit] for bit in required)))
        for exec_mask, outputs in variants:
            key = (exec_mask, tuple(sorted(outputs)))
            if key in seen:
                continue
            seen.add(key)
            emitted += 1
            spec = CandidateSpec(bg.names_of(exec_mask), outputs)
            if skip_specs is not None and spec_key(spec) in skip_specs:
                skipped += 1
            else:
                specs.append(spec)
            if emitted >= config.max_candidates:
                break
    if skipped:
        report.extra["memo_dominance_skips"] = (
            report.extra.get("memo_dominance_skips", 0) + skipped
        )
    return specs


def _prune_node_mask(
    bg: BitGraph,
    node_mask: int,
    config: KernelIdentifierConfig,
    report: KernelIdentifierReport,
) -> bool:
    """Mask twin of :func:`_prune_node_set` — same checks, same counters
    (including the historical quirk of counting opaque prunes as linear)."""
    size = node_mask.bit_count()
    if size > config.max_kernel_size:
        report.pruned_by_size += 1
        return True
    if (node_mask & bg.linear_mask).bit_count() > config.max_linear_per_kernel:
        report.pruned_by_linear += 1
        return True
    if node_mask & bg.opaque_mask and size > 1:
        report.pruned_by_linear += 1
        return True
    if config.require_connected and size > 1 and not bg.is_connected(node_mask):
        report.pruned_by_connectivity += 1
        return True
    return False


def enumerate_candidate_specs_reference(
    pg: PrimitiveGraph,
    config: KernelIdentifierConfig,
    report: KernelIdentifierReport,
) -> list[CandidateSpec]:
    """The original frozenset enumeration (specification of record).

    Deterministic in ``(pg structure, config)``; reads no tensor shapes or
    dtypes, so equal structures yield equal spec lists.  Enumeration stops at
    ``max_candidates`` specs, so a tight cap bounds this stage too.  (When
    the cap binds *and* profiling rejects some specs, the surviving set can
    be slightly smaller than the legacy interleaved flow's — both are
    arbitrary truncations under a safety valve that defaults to 50k.)
    """
    states = enumerate_execution_states(pg, max_states=config.max_states)
    report.num_execution_states = len(states)

    convex_sets = convex_subgraphs_from_states(states, max_size=config.max_kernel_size)
    # Singletons are always candidates, even if the state-pair enumeration
    # was truncated: they are the fallback that keeps the BLP feasible.
    for node in pg.nodes:
        convex_sets.add(frozenset({node.name}))
    report.num_convex_sets = len(convex_sets)

    nodes_by_name = {node.name: node for node in pg.nodes}
    specs: list[CandidateSpec] = []
    seen: set[tuple[frozenset[str], tuple[str, ...]]] = set()
    for node_set in sorted(convex_sets, key=lambda s: (len(s), sorted(s))):
        if len(specs) >= config.max_candidates:
            break
        if _prune_node_set(pg, node_set, nodes_by_name, config, report):
            continue
        for exec_names, outputs in _candidate_variants(pg, node_set, nodes_by_name, config):
            key = (exec_names, tuple(sorted(outputs)))
            if key in seen:
                continue
            seen.add(key)
            specs.append(CandidateSpec(exec_names, tuple(outputs)))
            if len(specs) >= config.max_candidates:
                break
    return specs


def _prune_node_set(
    pg: PrimitiveGraph,
    node_set: frozenset[str],
    nodes_by_name: dict[str, PrimitiveNode],
    config: KernelIdentifierConfig,
    report: KernelIdentifierReport,
) -> bool:
    """Apply the §6.5 pruning heuristics; returns True when pruned."""
    if len(node_set) > config.max_kernel_size:
        report.pruned_by_size += 1
        return True
    members = [nodes_by_name[name] for name in node_set]
    num_linear = sum(1 for node in members if node.is_linear)
    if num_linear > config.max_linear_per_kernel:
        report.pruned_by_linear += 1
        return True
    has_opaque = any(node.prim.category.value == "opaque" for node in members)
    if has_opaque and len(node_set) > 1:
        report.pruned_by_linear += 1
        return True
    if config.require_connected and len(node_set) > 1:
        if len(connected_components(pg, node_set)) > 1:
            report.pruned_by_connectivity += 1
            return True
    return False


def _candidate_variants(
    pg: PrimitiveGraph,
    node_set: frozenset[str],
    nodes_by_name: dict[str, PrimitiveNode],
    config: KernelIdentifierConfig,
):
    """Yield (execution set, output tensors) variants for a convex set.

    Possible outputs (Definition 3) are the members with a consumer
    outside the set, plus graph-output producers.  One single-output
    candidate is emitted per possible output (restricted to that output's
    ancestors inside the set, which is the part of the set the kernel
    actually needs), plus — optionally — one candidate materializing all
    required outputs at once.
    """
    members = [nodes_by_name[name] for name in node_set]
    _, required_outputs = pg.subset_io(members)
    if not required_outputs:
        return

    ancestors_cache: dict[str, set[str]] = {}

    def ancestors_within(target: PrimitiveNode) -> frozenset[str]:
        if target.name not in ancestors_cache:
            result: set[str] = {target.name}
            stack = [target]
            while stack:
                current = stack.pop()
                for pred in pg.predecessors(current):
                    if pred.name in node_set and pred.name not in result:
                        result.add(pred.name)
                        stack.append(pred)
            ancestors_cache[target.name] = result
        return frozenset(ancestors_cache[target.name])

    emitted_full = False
    for tensor in required_outputs:
        producer = pg.producer(tensor)
        if producer is None or producer.name not in node_set:
            continue
        restricted = ancestors_within(producer)
        yield restricted, [tensor]
        if restricted == node_set and len(required_outputs) == 1:
            emitted_full = True

    if config.allow_multi_output and len(required_outputs) > 1 and not emitted_full:
        yield frozenset(node_set), list(required_outputs)
