"""Kernel orchestration optimizer (§4.2).

Ties the pieces together for one primitive graph: identify candidate kernels
(Algorithm 1), build the binary linear program, solve it, and turn the
selected kernels into an ordered :class:`~repro.orchestration.strategy.OrchestrationStrategy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..backends import KernelBackend
from ..gpu.specs import GpuSpec
from ..primitives.graph import PrimitiveGraph
from ..solver import SolveResult, solve_blp
from .blp import build_orchestration_blp
from .identifier import KernelIdentifier, KernelIdentifierConfig, KernelIdentifierReport
from .kernel import CandidateKernel
from .strategy import OrchestrationStrategy, order_kernels

__all__ = ["OrchestrationResult", "KernelOrchestrationOptimizer"]


@dataclass
class OrchestrationResult:
    """Strategy plus all the intermediate artifacts, for reports and tests."""

    strategy: OrchestrationStrategy
    candidates: list[CandidateKernel]
    identifier_report: KernelIdentifierReport
    solve_result: SolveResult
    extra: dict = field(default_factory=dict)

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)


class KernelOrchestrationOptimizer:
    """Discovers the optimal kernel execution strategy for a primitive graph."""

    def __init__(
        self,
        spec: GpuSpec,
        backends: Sequence[KernelBackend] | None = None,
        identifier_config: KernelIdentifierConfig | None = None,
        solver_method: str = "auto",
        solver_time_limit_s: float | None = 1000.0,
        solver_mip_rel_gap: float = 0.0,
    ) -> None:
        self.spec = spec
        self.identifier = KernelIdentifier(spec, backends=backends, config=identifier_config)
        self.solver_method = solver_method
        self.solver_time_limit_s = solver_time_limit_s
        self.solver_mip_rel_gap = solver_mip_rel_gap

    def optimize(self, pg: PrimitiveGraph) -> OrchestrationResult:
        """Return the minimum-latency kernel orchestration strategy for ``pg``."""
        candidates, report = self.identifier.identify(pg)
        if not candidates and pg.nodes:
            raise RuntimeError(
                f"kernel identifier produced no candidates for {pg.name!r}; "
                "cannot orchestrate"
            )

        if not pg.nodes:
            strategy = OrchestrationStrategy(pg, [], 0.0, "optimal", "empty")
            return OrchestrationResult(strategy, [], report, SolveResult("optimal", 0.0, []))

        blp = build_orchestration_blp(pg, candidates)
        result = solve_blp(
            blp.problem,
            method=self.solver_method,
            time_limit_s=self.solver_time_limit_s,
            mip_rel_gap=self.solver_mip_rel_gap,
        )
        if not result.is_feasible:
            raise RuntimeError(
                f"orchestration BLP for {pg.name!r} is {result.status}; "
                f"{len(candidates)} candidates, {blp.problem.num_constraints} constraints"
            )

        selected = blp.selected_kernels(result.values)
        ordered = order_kernels(pg, selected)
        strategy = OrchestrationStrategy(
            pg=pg,
            kernels=ordered,
            objective_s=result.objective,
            solver_status=result.status,
            solver_method=result.method,
            metadata={
                "num_candidates": len(candidates),
                "num_constraints": blp.problem.num_constraints,
                "num_execution_states": report.num_execution_states,
            },
        )
        return OrchestrationResult(strategy, candidates, report, result)
