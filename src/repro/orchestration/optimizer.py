"""Kernel orchestration optimizer (§4.2).

Ties the pieces together for one primitive graph: identify candidate kernels
(Algorithm 1), build the binary linear program, solve it, and turn the
selected kernels into an ordered :class:`~repro.orchestration.strategy.OrchestrationStrategy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..backends import FrameworkEagerBackend, KernelBackend, TuningTimeModel
from ..gpu.profiler import KernelProfiler
from ..gpu.specs import GpuSpec
from ..primitives.graph import PrimitiveGraph
from ..solver import SolveResult, SolverConfig, solve_blp
from .blp import build_orchestration_blp
from .identifier import KernelIdentifier, KernelIdentifierConfig, KernelIdentifierReport
from .kernel import CandidateKernel
from .strategy import OrchestrationStrategy, order_kernels

__all__ = ["OrchestrationResult", "KernelOrchestrationOptimizer"]


@dataclass
class OrchestrationResult:
    """Strategy plus all the intermediate artifacts, for reports and tests."""

    strategy: OrchestrationStrategy
    candidates: list[CandidateKernel]
    identifier_report: KernelIdentifierReport
    solve_result: SolveResult
    extra: dict = field(default_factory=dict)

    @property
    def num_candidates(self) -> int:
        # A replayed result only rebuilds the *selected* kernels; the true
        # candidate count of the original cold run travels in ``extra`` so
        # Table 2 statistics survive plan replay.
        return self.extra.get("num_candidates") or len(self.candidates)


class KernelOrchestrationOptimizer:
    """Discovers the optimal kernel execution strategy for a primitive graph."""

    def __init__(
        self,
        spec: GpuSpec,
        backends: Sequence[KernelBackend] | None = None,
        identifier_config: KernelIdentifierConfig | None = None,
        solver_method: str = "auto",
        solver_time_limit_s: float | None = 1000.0,
        solver_mip_rel_gap: float = 0.0,
        persistent_cache=None,
        tuning_model=None,
        solver_config: SolverConfig | None = None,
    ) -> None:
        self.spec = spec
        self.identifier = KernelIdentifier(
            spec,
            backends=backends,
            config=identifier_config,
            persistent_cache=persistent_cache,
            tuning_model=tuning_model,
        )
        self.solver_method = solver_method
        self.solver_time_limit_s = solver_time_limit_s
        self.solver_mip_rel_gap = solver_mip_rel_gap
        self.solver_config = solver_config
        self._probe_profiler_lazy: KernelProfiler | None = None
        self._probe_fallback_lazy: KernelProfiler | None = None

    @property
    def _probe_profiler(self) -> KernelProfiler:
        """Tuning-neutral profiler for segmentation-cover probes.

        Probes are analytic pre-screening; they must not inflate the Table 2
        tuning-time accounting, so they record into a throwaway tuning model.
        The persistent cache (if any) is still shared — probe answers are
        reusable real profiles.
        """
        if self._probe_profiler_lazy is None:
            self._probe_profiler_lazy = KernelProfiler(
                self.spec,
                self.identifier.profiler.backends,
                TuningTimeModel(),
                persistent_cache=self.identifier.profiler.persistent_cache,
                tuning_authoritative=False,
            )
        return self._probe_profiler_lazy

    @property
    def _probe_fallback(self) -> KernelProfiler:
        if self._probe_fallback_lazy is None:
            self._probe_fallback_lazy = KernelProfiler(
                self.spec, [FrameworkEagerBackend()], TuningTimeModel(),
                tuning_authoritative=False,
            )
        return self._probe_fallback_lazy

    @property
    def profiler_stats(self):
        """Cache/estimate statistics of every profiler this optimizer used."""
        stats = self.identifier.profiler_stats
        if self._probe_profiler_lazy is not None:
            stats.merge(self._probe_profiler_lazy.stats)
        if self._probe_fallback_lazy is not None:
            stats.merge(self._probe_fallback_lazy.stats)
        return stats

    def replay(self, pg: PrimitiveGraph, plan) -> OrchestrationResult | None:
        """Rebuild a previously-solved strategy without enumerating or solving.

        ``plan`` is a :class:`repro.cache.PartitionPlan` (duck-typed): an
        ordered list of kernels given by node names and output tensors.  Each
        kernel is re-priced through the profiler — against a warm persistent
        profile cache this touches no backend — and validated against the
        regenerated primitive graph; any mismatch (stale or corrupted plan)
        returns ``None`` so the caller falls back to the cold path.
        """
        if not pg.nodes:
            if plan.kernels:
                return None
            strategy = OrchestrationStrategy(pg, [], 0.0, "optimal", "empty")
            return OrchestrationResult(
                strategy, [], KernelIdentifierReport(), SolveResult("optimal", 0.0, []),
                extra={"replayed": True},
            )

        kernels: list[CandidateKernel] = []
        produced: set[str] = set()
        for index, kernel_plan in enumerate(plan.kernels):
            kernel = self.identifier.build_kernel(
                pg, kernel_plan.node_names, kernel_plan.outputs, index
            )
            if kernel is None or kernel.external_inputs != list(kernel_plan.external_inputs):
                return None
            kernels.append(kernel)
            produced.update(kernel.outputs)
        # The replayed selection must still be feasible for this graph, under
        # exactly the BLP's constraints (Eqs. 3-4): every required output is
        # materialized, and every tensor a kernel reads from device memory is
        # materialized by some kernel.  (Full node coverage is deliberately
        # NOT required: primitives that feed no required output are legally
        # skipped by the solver, so a valid plan may omit them.)
        if any(
            tensor not in produced
            for tensor in pg.outputs
            if pg.producer(tensor) is not None
        ):
            return None
        for kernel in kernels:
            for tensor in kernel.external_inputs:
                if not pg.is_source_tensor(tensor) and tensor not in produced:
                    return None

        strategy = OrchestrationStrategy(
            pg=pg,
            kernels=kernels,
            objective_s=plan.objective_s,
            solver_status=plan.solver_status,
            solver_method=plan.solver_method,
            metadata={"num_candidates": plan.num_candidates, "replayed": True},
        )
        solve = SolveResult(plan.solver_status, plan.objective_s, [], method=plan.solver_method)
        return OrchestrationResult(
            strategy, kernels, KernelIdentifierReport(num_candidates=len(kernels)),
            solve, extra={"replayed": True, "num_candidates": plan.num_candidates},
        )

    def optimize(self, pg: PrimitiveGraph) -> OrchestrationResult:
        """Return the minimum-latency kernel orchestration strategy for ``pg``."""
        candidates, report = self.identifier.identify(pg)
        return self.solve(pg, candidates, report)

    def solve(
        self,
        pg: PrimitiveGraph,
        candidates: list[CandidateKernel],
        report: KernelIdentifierReport,
        warm_incumbent: list[int] | None = None,
    ) -> OrchestrationResult:
        """Solve the orchestration BLP over already-profiled ``candidates``.

        The tail of :meth:`optimize`, exposed separately so the engine's
        solve stage can run it on candidates produced by the identify and
        profile stages.  ``warm_incumbent`` (a 0/1 vector over candidate
        indices) optionally seeds branch and bound — the engine's near-miss
        solve memo; other methods ignore it.
        """
        if not candidates and pg.nodes:
            raise RuntimeError(
                f"kernel identifier produced no candidates for {pg.name!r}; "
                "cannot orchestrate"
            )

        if not pg.nodes:
            strategy = OrchestrationStrategy(pg, [], 0.0, "optimal", "empty")
            return OrchestrationResult(strategy, [], report, SolveResult("optimal", 0.0, []))

        blp = build_orchestration_blp(pg, candidates)
        result = solve_blp(
            blp.problem,
            method=self.solver_method,
            time_limit_s=self.solver_time_limit_s,
            mip_rel_gap=self.solver_mip_rel_gap,
            config=self.solver_config,
            warm_incumbent=warm_incumbent,
        )
        if not result.is_feasible:
            raise RuntimeError(
                f"orchestration BLP for {pg.name!r} is {result.status}; "
                f"{len(candidates)} candidates, {blp.problem.num_constraints} constraints"
            )

        selected = blp.selected_kernels(result.values)
        ordered = order_kernels(pg, selected)
        strategy = OrchestrationStrategy(
            pg=pg,
            kernels=ordered,
            objective_s=result.objective,
            solver_status=result.status,
            solver_method=result.method,
            metadata={
                "num_candidates": len(candidates),
                "num_constraints": blp.problem.num_constraints,
                "num_execution_states": report.num_execution_states,
            },
        )

        # Segmentation-cover guard: a time- or gap-limited MILP incumbent can
        # be far from optimal on large subgraphs, and the enumerated candidate
        # space is capped at ``max_kernel_size`` while vendor libraries fuse
        # far longer chains.  The DP cover below is cheap, feasible by
        # construction, and allowed larger kernels — keep whichever strategy
        # is faster.
        if self.identifier.config.enable_segment_cover:
            cover = self._segmentation_cover(pg)
            if cover is not None and cover.total_latency_s < strategy.total_latency_s:
                cover.metadata.update(strategy.metadata)
                cover.metadata["segment_cover"] = True
                strategy = cover
        return OrchestrationResult(strategy, candidates, report, result)

    # -------------------------------------------------------- segment cover
    def _segmentation_cover(self, pg: PrimitiveGraph) -> OrchestrationStrategy | None:
        """Optimal contiguous segmentation of the topological order.

        Dynamic program: split the topological node order into consecutive
        runs, where each convex run that some backend can generate becomes one
        kernel materializing exactly its externally-required tensors.  This is
        the orchestration the rule-based systems of Figure 6 approximate with
        greedy chain fusion — computed here with optimal cut points.  Every
        singleton is admissible (with the framework fallback), so the DP
        always yields a feasible full cover.
        """
        order = pg.topological_order()
        n = len(order)
        if n == 0:
            return None
        width = max(1, self.identifier.config.cover_max_kernel_size)
        reach = pg.reachability()
        inf = float("inf")

        best = [inf] * (n + 1)
        best[0] = 0.0
        choice: list = [None] * (n + 1)
        for j in range(n):
            for i in range(max(0, j - width + 1), j + 1):
                if best[i] == inf:
                    continue
                segment = order[i : j + 1]
                if not self._is_convex(segment, reach):
                    continue
                external_inputs, outputs = pg.subset_io(segment)
                if not outputs:
                    continue
                profile = self._probe_profiler.profile(pg, segment, external_inputs, outputs)
                if profile is None and len(segment) == 1:
                    profile = self._probe_fallback.profile(pg, segment, external_inputs, outputs)
                if profile is None:
                    continue
                cost = best[i] + profile.latency_s
                if cost < best[j + 1]:
                    best[j + 1] = cost
                    choice[j + 1] = (i, segment, outputs)

        if best[n] == inf:
            return None
        segments: list[tuple[list, list[str]]] = []
        position = n
        while position > 0:
            start, segment, outputs = choice[position]
            segments.append((segment, outputs))
            position = start
        segments.reverse()

        # Only the *chosen* segments become real kernels (and are charged
        # tuning time through the identifier's profiler); the DP probes above
        # are analytic cost-model screening.
        kernels: list[CandidateKernel] = []
        for index, (segment, outputs) in enumerate(segments):
            kernel = self.identifier.build_kernel(
                pg, [node.name for node in segment], outputs, index
            )
            if kernel is None:  # pragma: no cover - probe accepted it above
                return None
            kernels.append(kernel)
        return OrchestrationStrategy(
            pg=pg,
            kernels=kernels,
            objective_s=best[n],
            solver_status="heuristic",
            solver_method="segment-cover",
            metadata={},
        )

    @staticmethod
    def _is_convex(segment, reach) -> bool:
        """No path between two segment members leaves the segment (Def. 2)."""
        names = {node.name for node in segment}
        outside_descendants = set()
        for node in segment:
            outside_descendants.update(reach[node.name] - names)
        return not any(reach[z] & names for z in outside_descendants)
