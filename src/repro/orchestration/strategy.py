"""Kernel execution strategies: the output of the orchestration optimizer."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..primitives.graph import PrimitiveGraph
from .kernel import CandidateKernel

__all__ = ["OrchestrationStrategy", "order_kernels"]


class StrategyError(RuntimeError):
    """Raised when a selected kernel set cannot be ordered into a valid plan."""


def order_kernels(pg: PrimitiveGraph, kernels: list[CandidateKernel]) -> list[CandidateKernel]:
    """Topologically order selected kernels by their tensor dependencies.

    Kernel B depends on kernel A when B reads (as an external input) a tensor
    that A materializes.  When several selected kernels materialize the same
    tensor, the dependency is satisfied by whichever runs first, so the edge
    goes to the earliest possible producer; convexity of candidate kernels
    guarantees the result is acyclic (Theorem 1), and a cycle here is
    therefore reported as an internal error.
    """
    producers: dict[str, list[int]] = {}
    for position, kernel in enumerate(kernels):
        for tensor in kernel.outputs:
            producers.setdefault(tensor, []).append(position)

    dependencies: dict[int, set[int]] = {i: set() for i in range(len(kernels))}
    for position, kernel in enumerate(kernels):
        for tensor in kernel.external_inputs:
            if pg.is_source_tensor(tensor):
                continue
            candidates = [i for i in producers.get(tensor, []) if i != position]
            if not candidates:
                raise StrategyError(
                    f"kernel {position} reads {tensor!r} but no selected kernel materializes it"
                )
            dependencies[position].add(candidates[0])

    ordered: list[int] = []
    visited: dict[int, int] = {}  # 0 = visiting, 1 = done

    def visit(index: int) -> None:
        state = visited.get(index)
        if state == 1:
            return
        if state == 0:
            raise StrategyError("circular dependency between selected kernels")
        visited[index] = 0
        for dep in sorted(dependencies[index]):
            visit(dep)
        visited[index] = 1
        ordered.append(index)

    for index in range(len(kernels)):
        visit(index)
    return [kernels[i] for i in ordered]


@dataclass
class OrchestrationStrategy:
    """An ordered kernel execution plan for one primitive graph."""

    pg: PrimitiveGraph
    kernels: list[CandidateKernel]
    objective_s: float
    solver_status: str = ""
    solver_method: str = ""
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ info
    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    @property
    def total_latency_s(self) -> float:
        """Predicted end-to-end latency (Equation 2: sum of kernel latencies)."""
        return sum(kernel.latency_s for kernel in self.kernels)

    @property
    def total_latency_ms(self) -> float:
        return self.total_latency_s * 1e3

    def execution_counts(self) -> dict[str, int]:
        """How many times each primitive is executed across selected kernels.

        Values greater than one indicate redundant computation (§4.2,
        Figure 4c executes p1 three times).
        """
        counts: dict[str, int] = {node.name: 0 for node in self.pg.nodes}
        for kernel in self.kernels:
            for name in kernel.node_names:
                counts[name] += 1
        return counts

    def redundant_primitives(self) -> dict[str, int]:
        """Primitives executed more than once, with their execution count."""
        return {name: count for name, count in self.execution_counts().items() if count > 1}

    def kernels_executing_operator(self, source_op: str) -> list[CandidateKernel]:
        """Kernels that execute at least one primitive of an operator.

        Used by the case studies, e.g. "Korch maps Softmax to all four
        kernels" (§6.4).
        """
        return [kernel for kernel in self.kernels if source_op in kernel.source_ops]

    def describe(self) -> str:
        """Multi-line human-readable plan (used by the examples)."""
        lines = [
            f"strategy for {self.pg.name}: {self.num_kernels} kernels, "
            f"{self.total_latency_ms:.3f} ms predicted"
        ]
        for kernel in self.kernels:
            lines.append("  " + kernel.describe(self.pg))
        redundant = self.redundant_primitives()
        if redundant:
            lines.append(f"  redundantly executed primitives: {redundant}")
        return "\n".join(lines)
