"""Binary linear program construction for kernel orchestration (§4.2).

Variables: one binary ``u_i`` per candidate kernel (1 = the kernel is
launched).  Objective: the sum of the selected kernels' profiled latencies
(Equation 2).  Constraints:

* **Output constraints** (Equation 3): every tensor the primitive graph must
  produce is materialized by at least one selected kernel.
* **Dependency constraints** (Equation 4): if a selected kernel reads a
  tensor produced by some primitive, at least one selected kernel must
  materialize that tensor.

Unlike prior work, primitives may be *executed* by any number of selected
kernels (redundant computation); only materialization is constrained, which
is exactly the relaxation that lets Korch trade recomputation for memory
traffic and launch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..primitives.graph import PrimitiveGraph
from ..solver.problem import BinaryLinearProgram
from .kernel import CandidateKernel

__all__ = ["OrchestrationBlp", "build_orchestration_blp"]


@dataclass
class OrchestrationBlp:
    """The constructed BLP plus the bookkeeping to interpret its solution."""

    problem: BinaryLinearProgram
    kernels: list[CandidateKernel]
    #: tensor name -> indices of kernels that materialize it
    producers_of: dict[str, list[int]]
    #: tensors that must be materialized because they are graph outputs
    required_tensors: list[str]

    def selected_kernels(self, values: list[int]) -> list[CandidateKernel]:
        """Kernels chosen by a 0/1 assignment."""
        return [kernel for kernel, value in zip(self.kernels, values) if value >= 0.5]


def build_orchestration_blp(pg: PrimitiveGraph, kernels: list[CandidateKernel]) -> OrchestrationBlp:
    """Construct the kernel orchestration BLP for ``pg`` and its candidates."""
    problem = BinaryLinearProgram(f"{pg.name}.orchestration")

    producers_of: dict[str, list[int]] = {}
    for position, kernel in enumerate(kernels):
        index = problem.add_variable(f"u_{position}", kernel.latency_s)
        if index != position:
            raise AssertionError("kernel variable indices must match kernel order")
        for tensor in kernel.outputs:
            producers_of.setdefault(tensor, []).append(position)

    # Output constraints: every graph output tensor produced by a primitive
    # must be materialized at least once.  (Outputs that are graph sources —
    # pass-through inputs — need no kernel.)
    required = [t for t in pg.outputs if pg.producer(t) is not None]
    for tensor in required:
        producers = producers_of.get(tensor, [])
        if not producers:
            raise ValueError(
                f"no candidate kernel materializes required output {tensor!r}; "
                "the kernel identifier must at least provide singleton kernels"
            )
        problem.add_constraint({i: 1.0 for i in producers}, ">=", 1.0, name=f"out[{tensor}]")

    # Dependency constraints: a kernel can only run if every tensor it reads
    # from device memory is materialized by some selected kernel.
    for position, kernel in enumerate(kernels):
        for tensor in kernel.external_inputs:
            if pg.is_source_tensor(tensor):
                continue  # model inputs/weights/constants are always resident
            producers = [i for i in producers_of.get(tensor, []) if i != position]
            coeffs = {i: 1.0 for i in producers}
            coeffs[position] = coeffs.get(position, 0.0) - 1.0
            problem.add_constraint(coeffs, ">=", 0.0, name=f"dep[k{position},{tensor}]")

    return OrchestrationBlp(
        problem=problem,
        kernels=kernels,
        producers_of=producers_of,
        required_tensors=required,
    )
