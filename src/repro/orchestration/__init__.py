"""Kernel orchestration: execution states, kernel identification, BLP optimizer (§4)."""

from .blp import OrchestrationBlp, build_orchestration_blp
from .execution_state import (
    connected_components,
    convex_subgraphs_from_states,
    enumerate_execution_states,
    is_convex,
    is_execution_state,
)
from .identifier import (
    CandidateSpec,
    KernelIdentifier,
    KernelIdentifierConfig,
    KernelIdentifierReport,
)
from .kernel import CandidateKernel
from .optimizer import KernelOrchestrationOptimizer, OrchestrationResult
from .strategy import OrchestrationStrategy, order_kernels

__all__ = [
    "enumerate_execution_states",
    "is_execution_state",
    "is_convex",
    "convex_subgraphs_from_states",
    "connected_components",
    "CandidateKernel",
    "CandidateSpec",
    "KernelIdentifier",
    "KernelIdentifierConfig",
    "KernelIdentifierReport",
    "OrchestrationBlp",
    "build_orchestration_blp",
    "OrchestrationStrategy",
    "order_kernels",
    "KernelOrchestrationOptimizer",
    "OrchestrationResult",
]
