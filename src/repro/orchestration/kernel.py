"""Candidate kernel representation.

A candidate kernel is a convex set of primitives together with the tensors it
reads from device memory (external inputs) and the tensors it materializes
back to device memory (its output set).  The same primitive set can appear in
several candidates with different output sets — that is how the BLP can
choose to *not* materialize an intermediate and instead recompute it in
another kernel (the redundant-computation relaxation of §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.profiler import KernelProfile
from ..primitives.graph import PrimitiveGraph, PrimitiveNode

__all__ = ["CandidateKernel"]


@dataclass
class CandidateKernel:
    """One candidate kernel produced by the kernel identifier."""

    index: int
    node_names: frozenset[str]
    nodes: list[PrimitiveNode]
    external_inputs: list[str]
    outputs: list[str]
    profile: KernelProfile

    #: Names of primitives whose producing operator can be reported (set by
    #: the identifier from PrimitiveNode.source_op, used by case studies).
    source_ops: frozenset[str] = field(default_factory=frozenset)

    @property
    def latency_s(self) -> float:
        """Profiled latency of the kernel (the BLP objective coefficient)."""
        return self.profile.latency_s

    @property
    def backend(self) -> str:
        return self.profile.backend

    @property
    def num_primitives(self) -> int:
        return len(self.nodes)

    @property
    def output_nodes(self) -> list[PrimitiveNode]:
        """Nodes whose result tensor is materialized by this kernel."""
        outputs = set(self.outputs)
        return [node for node in self.nodes if node.output in outputs]

    def executes(self, node_name: str) -> bool:
        """Whether this kernel computes the primitive ``node_name``."""
        return node_name in self.node_names

    def materializes(self, tensor: str) -> bool:
        """Whether this kernel writes ``tensor`` to device memory."""
        return tensor in self.outputs

    def describe(self, pg: PrimitiveGraph) -> str:
        """One-line human-readable summary used by reports and examples."""
        ops = ", ".join(node.prim.op for node in self.nodes)
        return (
            f"K{self.index}[{ops}] -> {', '.join(self.outputs)} "
            f"({self.backend}, {self.profile.latency_us:.2f} us)"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CandidateKernel(#{self.index}, prims={sorted(self.node_names)}, "
            f"outputs={self.outputs}, latency={self.profile.latency_us:.2f}us)"
        )
