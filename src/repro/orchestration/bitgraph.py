"""Bit-packed view of a :class:`PrimitiveGraph` for the enumeration hot path.

The kernel identifier (Algorithm 1) spends its cold-run time on set algebra:
downward-closure checks while enumerating execution states, pairwise set
differences for the convex subgraphs (Theorem 1), connectivity and I/O scans
per candidate.  All of it is node-set manipulation on a graph that never
changes during one enumeration — exactly the shape that packs into Python
ints with one bit per node, where a subset test is ``a & ~b == 0`` and a set
size is ``bit_count()``.

:class:`BitGraph` assigns bit ``i`` to the ``i``-th node name in sorted
order.  That choice makes mask order reproduce the reference enumeration
order: for equal popcounts, comparing tuples of ascending set-bit indices is
exactly comparing sorted name lists, so ``sorted(masks, key=mask_sort_key)``
visits candidates in the same sequence as the reference's ``sorted(sets,
key=lambda s: (len(s), sorted(s)))``.  Order identity matters — candidate
indices feed BLP variable order and solver tie-breaking, and the engine
promises bit-identical plans regardless of evaluation core.

Everything here is pure computation on picklable data; the process-pool
prologue uses it the same way the in-process stages do.
"""

from __future__ import annotations

from typing import Iterator

from ..primitives.graph import PrimitiveGraph

__all__ = ["BitGraph", "iter_bits", "mask_sort_key", "state_masks", "convex_masks"]


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_sort_key(mask: int) -> tuple[int, tuple[int, ...]]:
    """Sort key replicating the reference ``(len(s), sorted(s))`` order."""
    return (mask.bit_count(), tuple(iter_bits(mask)))


class BitGraph:
    """Per-enumeration precomputation: every per-node relation as a mask."""

    __slots__ = (
        "pg",
        "names",
        "bit_of",
        "num_nodes",
        "full_mask",
        "topo_bits",
        "nodes_order_bits",
        "pred_mask",
        "succ_mask",
        "adj_mask",
        "linear_mask",
        "opaque_mask",
        "graph_output_mask",
        "output_tensor",
    )

    def __init__(self, pg: PrimitiveGraph) -> None:
        self.pg = pg
        #: Bit ``i`` is the ``i``-th node name in sorted order (see module
        #: docstring — this is what makes mask order match reference order).
        self.names = sorted(node.name for node in pg.nodes)
        self.bit_of = {name: i for i, name in enumerate(self.names)}
        self.num_nodes = len(self.names)
        self.full_mask = (1 << self.num_nodes) - 1

        bit_of = self.bit_of
        #: Node bits in the orders the reference code iterates: topological
        #: (execution-state DFS) and graph list order (``subset_io`` scans).
        self.topo_bits = [bit_of[node.name] for node in pg.topological_order()]
        self.nodes_order_bits = [bit_of[node.name] for node in pg.nodes]

        self.pred_mask = [0] * self.num_nodes
        self.succ_mask = [0] * self.num_nodes
        self.linear_mask = 0
        self.opaque_mask = 0
        self.graph_output_mask = 0
        self.output_tensor = [""] * self.num_nodes
        graph_outputs = set(pg.outputs)
        producer_bit = {node.output: bit_of[node.name] for node in pg.nodes}
        for node in pg.nodes:
            bit = bit_of[node.name]
            self.output_tensor[bit] = node.output
            if node.is_linear:
                self.linear_mask |= 1 << bit
            if node.prim.category.value == "opaque":
                self.opaque_mask |= 1 << bit
            if node.output in graph_outputs:
                self.graph_output_mask |= 1 << bit
            for tensor in node.inputs:
                pred = producer_bit.get(tensor)
                if pred is not None:
                    self.pred_mask[bit] |= 1 << pred
                    self.succ_mask[pred] |= 1 << bit
        self.adj_mask = [
            self.pred_mask[i] | self.succ_mask[i] for i in range(self.num_nodes)
        ]

    # ------------------------------------------------------------ conversion
    def mask_of(self, names) -> int:
        """Pack an iterable of node names into a mask."""
        mask = 0
        bit_of = self.bit_of
        for name in names:
            mask |= 1 << bit_of[name]
        return mask

    def names_of(self, mask: int) -> frozenset[str]:
        """Unpack a mask into the frozenset the public API speaks."""
        names = self.names
        return frozenset(names[i] for i in iter_bits(mask))

    # -------------------------------------------------------------- queries
    def is_connected(self, mask: int) -> bool:
        """Weak connectivity of the induced subgraph on ``mask``."""
        if mask == 0:
            return True
        adj = self.adj_mask
        component = mask & -mask  # BFS from the lowest member
        frontier = component
        while frontier:
            grow = 0
            for bit in iter_bits(frontier):
                grow |= adj[bit]
            frontier = grow & mask & ~component
            component |= frontier
        return component == mask

    def ancestors_within(self, bit: int, mask: int) -> int:
        """Members of ``mask`` that reach node ``bit`` (inclusive), through
        predecessor edges that stay inside ``mask``."""
        pred = self.pred_mask
        result = 1 << bit
        frontier = pred[bit] & mask & ~result
        while frontier:
            result |= frontier
            grow = 0
            for member in iter_bits(frontier):
                grow |= pred[member]
            frontier = grow & mask & ~result
        return result

    def required_output_bits(self, mask: int) -> list[int]:
        """Producer bits of the subset's required outputs, in the order
        ``PrimitiveGraph.subset_io`` reports them (graph node-list order):
        graph outputs, and tensors with a consumer outside the subset."""
        out: list[int] = []
        graph_out = self.graph_output_mask
        succ = self.succ_mask
        not_mask = ~mask
        for bit in self.nodes_order_bits:
            if not (mask >> bit) & 1:
                continue
            if (graph_out >> bit) & 1 or succ[bit] & not_mask:
                out.append(bit)
        return out


def state_masks(bg: BitGraph, max_states: int) -> list[int]:
    """Execution states of ``bg`` as masks — the bit twin of the reference
    DFS in :func:`repro.orchestration.execution_state.enumerate_execution_states`,
    including its overflow fallback to topological-prefix states."""
    pred = bg.pred_mask
    topo_bits = bg.topo_bits

    states: set[int] = {0}
    stack: list[int] = [0]
    overflowed = False
    while stack:
        current = stack.pop()
        for bit in topo_bits:
            if (current >> bit) & 1:
                continue
            if pred[bit] & ~current:
                continue  # a predecessor is missing: not downward-closed
            successor_state = current | (1 << bit)
            if successor_state not in states:
                states.add(successor_state)
                if len(states) > max_states:
                    overflowed = True
                    break
                stack.append(successor_state)
        if overflowed:
            break

    if overflowed:
        prefix_states: list[int] = [0]
        running = 0
        for bit in topo_bits:
            running |= 1 << bit
            prefix_states.append(running)
        return prefix_states

    return list(states)


def convex_masks(states: list[int], max_size: int | None) -> set[int]:
    """All non-empty differences ``D2 \\ D1`` over state pairs ``D1 ⊂ D2``.

    Same result set as the reference pairwise scan, but bucketed by state
    size first: ``D1 ⊆ D2`` forces ``|D2 \\ D1| = |D2| - |D1|``, so only
    bucket pairs within ``max_size`` of each other can contribute — a real
    algorithmic cut on top of the cheaper per-pair mask test.
    """
    buckets: dict[int, list[int]] = {}
    for state in states:
        buckets.setdefault(state.bit_count(), []).append(state)
    sizes = sorted(buckets)
    results: set[int] = set()
    for s1 in sizes:
        for s2 in sizes:
            if s2 <= s1:
                continue
            if max_size is not None and s2 - s1 > max_size:
                continue
            for d1 in buckets[s1]:
                for d2 in buckets[s2]:
                    if d1 & ~d2:
                        continue
                    results.add(d2 & ~d1)
    return results
