"""Infrastructure for primitive-graph transformations.

Korch's primitive graph optimizer reuses TASO-style graph substitutions: each
transformation matches a small pattern in the primitive graph and rewrites it
into a functionally equivalent one (§3).  A transformation here reports the
*sites* where it applies and can rewrite one site at a time on a copy of the
graph; the optimizer (:mod:`repro.transforms.optimizer`) decides which
rewrites to keep based on a cost model.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

from ..primitives.graph import PrimitiveGraph

__all__ = ["TransformSite", "Transform", "redirect_tensor", "remove_dead_nodes"]


@dataclass(frozen=True)
class TransformSite:
    """One location where a transformation applies.

    ``anchor`` is the name of the primitive node the match is keyed on;
    ``payload`` carries transformation-specific match details.
    """

    transform: str
    anchor: str
    payload: tuple[tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        for name, value in self.payload:
            if name == key:
                return value
        return default


class Transform(abc.ABC):
    """A semantics-preserving primitive-graph substitution."""

    #: Short name used in reports.
    name: str = "transform"

    @abc.abstractmethod
    def find_sites(self, pg: PrimitiveGraph) -> list[TransformSite]:
        """All sites in ``pg`` where this transformation applies."""

    @abc.abstractmethod
    def apply(self, pg: PrimitiveGraph, site: TransformSite) -> PrimitiveGraph:
        """Return a new graph with the rewrite applied at ``site``.

        Implementations must not mutate ``pg``; they work on ``pg.copy()``.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Transform {self.name}>"


def redirect_tensor(pg: PrimitiveGraph, old: str, new: str) -> None:
    """Point every consumer of ``old`` (and graph outputs) at ``new``."""
    for node in pg.nodes:
        node.inputs = [new if t == old else t for t in node.inputs]
    pg.outputs = [new if t == old else t for t in pg.outputs]


def replace_with(pg: PrimitiveGraph, old_node, new_tensor: str) -> None:
    """Replace ``old_node``'s result with ``new_tensor`` everywhere.

    Consumers are rewired, the node is removed, and — crucially for the
    verification machinery — if the replaced tensor was a graph output the new
    producer's result is renamed back to the original tensor name, so graph
    output names stay stable across transformations.
    """
    old_name = old_node.output
    was_output = old_name in pg.outputs
    redirect_tensor(pg, old_name, new_tensor)
    pg.remove_node(old_node)
    if was_output:
        producer = pg.producer(new_tensor)
        if producer is not None:
            pg.rename_output(producer, old_name)
    remove_dead_nodes(pg)


def remove_dead_nodes(pg: PrimitiveGraph) -> int:
    """Remove primitives whose output is never consumed and is not a graph
    output; returns the number of nodes removed."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for node in list(pg.nodes):
            if node.output in pg.outputs:
                continue
            if pg.consumers(node.output):
                continue
            pg.remove_node(node)
            removed += 1
            changed = True
    return removed
