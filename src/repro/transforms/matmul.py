"""MatMul-centric transformations (Figure 2b / Figure 9 of the paper).

Three substitutions combine to fuse the reduction inside Softmax with a
following MatMul:

1. **Reduce→MatMul**: a last-axis ``ReduceSum`` is a matrix–vector product
   with an all-ones vector, so it can be rewritten as a linear primitive.
2. **Div/MatMul swap**: when the divisor is constant along the contraction
   axis (a per-row normalizer, e.g. the softmax denominator), the elementwise
   division can be moved past the MatMul: ``(A / s) @ C == (A @ C) / s``.
3. **MatMul merge**: two MatMuls sharing their left operand are merged by
   concatenating the right operands and slicing the result (the paper uses
   Pad + Split; Concat + Slice is the same data movement with this repo's
   primitive set).
"""

from __future__ import annotations

import numpy as np

from ..primitives.elementwise import ElementwisePrimitive
from ..primitives.graph import PrimitiveGraph
from ..primitives.layout import LayoutPrimitive
from ..primitives.linear import MatMulPrimitive
from ..primitives.reduce_broadcast import BroadcastPrimitive, ReducePrimitive
from .base import Transform, TransformSite, redirect_tensor, remove_dead_nodes, replace_with

__all__ = ["ReduceSumToMatMul", "SwapDivPastMatMul", "MergeSharedInputMatMuls"]


class ReduceSumToMatMul(Transform):
    """Rewrite a last-axis ReduceSum as a MatMul with an all-ones vector."""

    name = "reduce-sum-to-matmul"

    def find_sites(self, pg: PrimitiveGraph) -> list[TransformSite]:
        sites = []
        for node in pg.nodes:
            prim = node.prim
            if not isinstance(prim, ReducePrimitive) or prim.op != "Sum":
                continue
            if not prim.attr("keepdims"):
                continue
            input_type = pg.tensor_type(node.inputs[0])
            axes = tuple(prim.attr("axes"))
            if len(axes) != 1:
                continue
            axis = axes[0] if axes[0] >= 0 else axes[0] + input_type.rank
            if axis != input_type.rank - 1 or input_type.rank < 2:
                continue
            sites.append(TransformSite(self.name, node.name))
        return sites

    def apply(self, pg: PrimitiveGraph, site: TransformSite) -> PrimitiveGraph:
        result = pg.copy()
        node = result.node(site.anchor)
        input_name = node.inputs[0]
        input_type = result.tensor_type(input_name)
        k = input_type.shape[-1]
        ones_name = result.unique_name(f"{node.name}_ones")
        result.add_constant(ones_name, np.ones((k, 1), dtype=input_type.dtype.to_numpy()))
        new_node = result.add_node(
            MatMulPrimitive(), [input_name, ones_name], source_op=node.source_op,
            name=result.unique_name(f"{node.name}_as_matmul"),
        )
        replace_with(result, node, new_node.output)
        return result


class SwapDivPastMatMul(Transform):
    """Rewrite ``MatMul(Div(A, s), C)`` into ``Div(MatMul(A, C), s)``.

    Legal when ``s`` does not vary along A's contraction (last) axis: either
    its last dimension is 1, or it is produced by a Broadcast along that axis
    (in which case the pre-broadcast tensor is used as the new divisor and the
    Broadcast may become dead).
    """

    name = "swap-div-past-matmul"

    def find_sites(self, pg: PrimitiveGraph) -> list[TransformSite]:
        sites = []
        for node in pg.nodes:
            if not isinstance(node.prim, MatMulPrimitive):
                continue
            div = pg.producer(node.inputs[0])
            if div is None or not isinstance(div.prim, ElementwisePrimitive) or div.prim.op != "Div":
                continue
            a_name, s_name = div.inputs
            a_type = pg.tensor_type(a_name)
            divisor = self._row_constant_divisor(pg, s_name, a_type.rank)
            if divisor is None:
                continue
            sites.append(
                TransformSite(
                    self.name,
                    node.name,
                    (("div", div.name), ("divisor", divisor), ("numerator", a_name)),
                )
            )
        return sites

    @staticmethod
    def _row_constant_divisor(pg: PrimitiveGraph, s_name: str, rank: int) -> str | None:
        """Divisor tensor that is constant along the last axis, or None."""
        s_type = pg.tensor_type(s_name)
        if s_type.rank == rank and s_type.shape[-1] == 1:
            return s_name
        producer = pg.producer(s_name)
        if (
            producer is not None
            and isinstance(producer.prim, BroadcastPrimitive)
            and int(producer.prim.attr("axis")) in (rank - 1, -1)
        ):
            return producer.inputs[0]
        return None

    def apply(self, pg: PrimitiveGraph, site: TransformSite) -> PrimitiveGraph:
        result = pg.copy()
        matmul = result.node(site.anchor)
        numerator = site.get("numerator")
        divisor = site.get("divisor")
        rhs = matmul.inputs[1]
        new_matmul = result.add_node(
            MatMulPrimitive(), [numerator, rhs], source_op=matmul.source_op,
            name=result.unique_name(f"{matmul.name}_swapped"),
        )
        # The moved division is still the *original* operator's normalization
        # (e.g. softmax's div), so it keeps that operator's attribution — this
        # is what lets the §6.4 case study observe softmax primitives spread
        # across several kernels after the swap.
        new_div = result.add_node(
            ElementwisePrimitive("Div"), [new_matmul.output, divisor],
            source_op=result.node(site.get("div")).source_op,
            name=result.unique_name(f"{matmul.name}_postdiv"),
        )
        replace_with(result, matmul, new_div.output)
        return result


class MergeSharedInputMatMuls(Transform):
    """Merge two MatMuls sharing the left operand via Concat + Slice."""

    name = "merge-shared-input-matmuls"

    def find_sites(self, pg: PrimitiveGraph) -> list[TransformSite]:
        sites = []
        by_left: dict[str, list] = {}
        for node in pg.nodes:
            if isinstance(node.prim, MatMulPrimitive):
                by_left.setdefault(node.inputs[0], []).append(node)
        for left, nodes in by_left.items():
            if len(nodes) < 2:
                continue
            # Merge pairs with identical right-operand shape prefixes (so the
            # concatenation along the last axis is well-formed).
            for i in range(len(nodes)):
                for j in range(i + 1, len(nodes)):
                    a, b = nodes[i], nodes[j]
                    ta = pg.tensor_type(a.inputs[1])
                    tb = pg.tensor_type(b.inputs[1])
                    if ta.shape[:-1] != tb.shape[:-1]:
                        continue
                    sites.append(
                        TransformSite(self.name, a.name, (("other", b.name), ("left", left)))
                    )
        return sites

    def apply(self, pg: PrimitiveGraph, site: TransformSite) -> PrimitiveGraph:
        result = pg.copy()
        first = result.node(site.anchor)
        second = result.node(site.get("other"))
        left = site.get("left")
        w1, w2 = first.inputs[1], second.inputs[1]
        t1, t2 = result.tensor_type(w1), result.tensor_type(w2)
        axis = t1.rank - 1
        n1, n2 = t1.shape[-1], t2.shape[-1]

        concat = result.add_node(
            LayoutPrimitive("Concat", axis=axis), [w1, w2],
            source_op=first.source_op,
            name=result.unique_name(f"{first.name}_wconcat"),
        )
        merged = result.add_node(
            MatMulPrimitive(), [left, concat.output],
            source_op=first.source_op,
            name=result.unique_name(f"{first.name}_merged"),
        )
        out_rank = result.tensor_type(merged.output).rank
        slice1 = result.add_node(
            LayoutPrimitive("Slice", starts=(0,), ends=(n1,), axes=(out_rank - 1,), steps=(1,)),
            [merged.output],
            source_op=first.source_op,
            name=result.unique_name(f"{first.name}_part"),
        )
        slice2 = result.add_node(
            LayoutPrimitive("Slice", starts=(n1,), ends=(n1 + n2,), axes=(out_rank - 1,), steps=(1,)),
            [merged.output],
            source_op=second.source_op,
            name=result.unique_name(f"{second.name}_part"),
        )
        # Rewire both MatMuls before any dead-node sweep: replace_with() prunes
        # unconsumed nodes, and slice2 has no consumers until the second
        # MatMul's readers are redirected, so a replace_with() for the first
        # MatMul would delete it and leave dangling tensor references.
        out1, out2 = first.output, second.output
        was_output1, was_output2 = out1 in result.outputs, out2 in result.outputs
        redirect_tensor(result, out1, slice1.output)
        result.remove_node(first)
        redirect_tensor(result, out2, slice2.output)
        result.remove_node(second)
        if was_output1:
            result.rename_output(slice1, out1)
        if was_output2:
            result.rename_output(slice2, out2)
        remove_dead_nodes(result)
        return result
