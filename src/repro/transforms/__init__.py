"""Primitive-graph transformations and the cost-guided graph optimizer."""

from .base import Transform, TransformSite, redirect_tensor, remove_dead_nodes
from .matmul import MergeSharedInputMatMuls, ReduceSumToMatMul, SwapDivPastMatMul
from .optimizer import (
    GraphOptimizerConfig,
    GraphOptimizerReport,
    PrimitiveGraphOptimizer,
    default_transforms,
)
from .simplify import ConstantLayoutFolding, IdentityElimination, TransposePairElimination

__all__ = [
    "Transform",
    "TransformSite",
    "redirect_tensor",
    "remove_dead_nodes",
    "IdentityElimination",
    "TransposePairElimination",
    "ConstantLayoutFolding",
    "ReduceSumToMatMul",
    "SwapDivPastMatMul",
    "MergeSharedInputMatMuls",
    "PrimitiveGraphOptimizer",
    "GraphOptimizerConfig",
    "GraphOptimizerReport",
    "default_transforms",
]
