"""Always-beneficial cleanup transformations.

These rewrites never increase cost — they remove work or move it to compile
time — so the optimizer applies them exhaustively before and after the
cost-guided substitutions:

* identity elimination,
* cancellation of inverse transpose pairs,
* folding of layout primitives applied to compile-time constants.
"""

from __future__ import annotations

from ..primitives.elementwise import ElementwisePrimitive
from ..primitives.graph import PrimitiveGraph
from ..primitives.layout import LayoutPrimitive
from .base import Transform, TransformSite, replace_with

__all__ = ["IdentityElimination", "TransposePairElimination", "ConstantLayoutFolding"]


class IdentityElimination(Transform):
    """Remove elementwise Identity primitives."""

    name = "identity-elimination"

    def find_sites(self, pg: PrimitiveGraph) -> list[TransformSite]:
        return [
            TransformSite(self.name, node.name)
            for node in pg.nodes
            if isinstance(node.prim, ElementwisePrimitive) and node.prim.op == "Identity"
        ]

    def apply(self, pg: PrimitiveGraph, site: TransformSite) -> PrimitiveGraph:
        result = pg.copy()
        node = result.node(site.anchor)
        source = node.inputs[0]
        if node.output in result.outputs and result.producer(source) is None:
            # Keep an explicit copy when the graph output would otherwise
            # alias a graph input.
            return result
        replace_with(result, node, source)
        return result


class TransposePairElimination(Transform):
    """Cancel ``Transpose(perm2) ∘ Transpose(perm1)`` when it is the identity."""

    name = "transpose-pair-elimination"

    def find_sites(self, pg: PrimitiveGraph) -> list[TransformSite]:
        sites = []
        for node in pg.nodes:
            if not (isinstance(node.prim, LayoutPrimitive) and node.prim.op == "Transpose"):
                continue
            producer = pg.producer(node.inputs[0])
            if producer is None:
                continue
            if not (isinstance(producer.prim, LayoutPrimitive) and producer.prim.op == "Transpose"):
                continue
            outer = node.prim.attr("perm")
            inner = producer.prim.attr("perm")
            composed = tuple(inner[p] for p in outer)
            if composed == tuple(range(len(composed))):
                sites.append(
                    TransformSite(self.name, node.name, (("producer", producer.name),))
                )
        return sites

    def apply(self, pg: PrimitiveGraph, site: TransformSite) -> PrimitiveGraph:
        result = pg.copy()
        node = result.node(site.anchor)
        producer = result.node(site.get("producer"))
        replace_with(result, node, producer.inputs[0])
        return result


class ConstantLayoutFolding(Transform):
    """Evaluate layout primitives whose input is a compile-time constant."""

    name = "constant-layout-folding"

    def find_sites(self, pg: PrimitiveGraph) -> list[TransformSite]:
        sites = []
        for node in pg.nodes:
            if not isinstance(node.prim, LayoutPrimitive):
                continue
            if all(t in pg.constants for t in node.inputs):
                sites.append(TransformSite(self.name, node.name))
        return sites

    def apply(self, pg: PrimitiveGraph, site: TransformSite) -> PrimitiveGraph:
        result = pg.copy()
        node = result.node(site.anchor)
        value = node.prim.compute([result.constants[t] for t in node.inputs])
        folded = result.unique_name(f"{node.output}_folded")
        result.add_constant(folded, value)
        replace_with(result, node, folded)
        return result
