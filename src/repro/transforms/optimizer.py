"""Primitive-graph optimizer (Figure 1, "Graph Optimizer").

Applies the TASO-style substitutions with a cost-guided backtracking search,
like the prior work Korch builds on: cleanup rewrites (identity, transpose
pairs, constant folding) are applied exhaustively, and the cost-relevant
substitutions (reduce→matmul, div/matmul swap, matmul merging) are explored
with a small beam search that keeps the cheapest graphs found.

The cost proxy is the sum of each primitive's best *singleton* kernel latency
— a deliberately simple stand-in for the orchestration cost that is monotone
in the amount of arithmetic and memory traffic in the graph, which is all the
search needs to prefer graphs with less work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..gpu.profiler import KernelProfiler
from ..gpu.specs import GpuSpec
from ..primitives.graph import PrimitiveGraph
from .base import Transform
from .matmul import MergeSharedInputMatMuls, ReduceSumToMatMul, SwapDivPastMatMul
from .simplify import ConstantLayoutFolding, IdentityElimination, TransposePairElimination

__all__ = ["GraphOptimizerConfig", "GraphOptimizerReport", "PrimitiveGraphOptimizer", "default_transforms"]


def default_transforms() -> list[Transform]:
    """The substitutions used by Korch's primitive-graph optimizer."""
    return [
        IdentityElimination(),
        TransposePairElimination(),
        ConstantLayoutFolding(),
        ReduceSumToMatMul(),
        SwapDivPastMatMul(),
        MergeSharedInputMatMuls(),
    ]


@dataclass
class GraphOptimizerConfig:
    """Search budget of the optimizer."""

    beam_width: int = 4
    max_iterations: int = 8
    #: Accept a rewritten graph only if it is at least this much cheaper
    #: (relative); 0 accepts any non-worsening rewrite.
    improvement_threshold: float = 0.0


@dataclass
class GraphOptimizerReport:
    """What the optimizer did, for logging and the case-study benchmarks."""

    initial_cost_s: float = 0.0
    final_cost_s: float = 0.0
    applied: list[str] = field(default_factory=list)
    candidates_evaluated: int = 0

    @property
    def improvement(self) -> float:
        if self.final_cost_s <= 0:
            return 1.0
        return self.initial_cost_s / self.final_cost_s


class PrimitiveGraphOptimizer:
    """Cost-guided beam search over primitive-graph substitutions."""

    def __init__(
        self,
        spec: GpuSpec,
        transforms: Sequence[Transform] | None = None,
        config: GraphOptimizerConfig | None = None,
        profiler: KernelProfiler | None = None,
        verifier: Callable[[PrimitiveGraph, PrimitiveGraph, str], None] | None = None,
    ) -> None:
        self.spec = spec
        self.transforms = list(transforms or default_transforms())
        self.config = config or GraphOptimizerConfig()
        self._profiler = profiler if profiler is not None else KernelProfiler(spec)
        #: Optional rewrite checker ``verifier(before, after, label)`` invoked
        #: on every applied substitution; the engine's ``verify_level="full"``
        #: debug mode installs :func:`repro.analysis.verify.checked_rewrite`,
        #: which raises on interface or type violations.
        self.verifier = verifier

    @property
    def profiler(self) -> KernelProfiler:
        """The singleton-cost profiler (exposed for cache statistics)."""
        return self._profiler

    # ------------------------------------------------------------------ api
    def optimize(self, pg: PrimitiveGraph) -> tuple[PrimitiveGraph, GraphOptimizerReport]:
        """Return the cheapest functionally-equivalent graph found."""
        report = GraphOptimizerReport()
        best = pg
        best_cost = self.graph_cost(pg)
        report.initial_cost_s = best_cost

        beam: list[tuple[float, PrimitiveGraph, list[str]]] = [(best_cost, pg, [])]
        for _ in range(self.config.max_iterations):
            expansions: list[tuple[float, PrimitiveGraph, list[str]]] = []
            for _cost, graph, trail in beam:
                for transform in self.transforms:
                    for site in transform.find_sites(graph):
                        candidate = transform.apply(graph, site)
                        candidate.validate()
                        if self.verifier is not None:
                            self.verifier(graph, candidate, f"{transform.name}@{site.anchor}")
                        candidate_cost = self.graph_cost(candidate)
                        report.candidates_evaluated += 1
                        expansions.append(
                            (candidate_cost, candidate, trail + [f"{transform.name}@{site.anchor}"])
                        )
            if not expansions:
                break
            expansions.sort(key=lambda item: item[0])
            beam = expansions[: self.config.beam_width]
            top_cost, top_graph, top_trail = beam[0]
            if top_cost < best_cost * (1.0 - self.config.improvement_threshold):
                best_cost, best, best_trail = top_cost, top_graph, top_trail
                report.applied = best_trail
            else:
                break

        report.final_cost_s = best_cost
        return best, report

    # ------------------------------------------------------------------ cost
    def graph_cost(self, pg: PrimitiveGraph) -> float:
        """Sum of per-primitive singleton kernel latencies (the search proxy)."""
        total = 0.0
        for node in pg.nodes:
            external_inputs, _ = pg.subset_io([node])
            profile = self._profiler.profile(pg, [node], external_inputs, [node.output])
            if profile is None:
                # Unsupported singleton (opaque): charge a memory pass.
                ttype = pg.tensor_type(node.output)
                total += self.spec.kernel_launch_s + ttype.size_bytes / self.spec.mem_bandwidth_bytes
                continue
            total += profile.latency_s
        return total
