"""Computation-graph partitioner (Figure 1, "Graph Partitioner").

Korch first splits the input computation graph into smaller subgraphs so the
per-subgraph optimization space (execution states × candidate kernels × BLP
size) stays tractable while preserving the optimization opportunities inside
each subgraph (§2, following the partitioning used by MetaFlow/PET).

The partitioner walks the graph in topological order and greedily grows a
partition until it reaches ``max_operators``; within a window around the
limit it prefers to cut at a *narrow* point — a position where few live
tensors cross the boundary — because a cut tensor must be materialized to
device memory by whichever kernel produces it, so narrow cuts forfeit the
fewest fusion opportunities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.graph import Graph, Node

__all__ = ["PartitionConfig", "Partition", "GraphPartitioner", "partition_graph"]


@dataclass
class PartitionConfig:
    """Tunable limits for the graph partitioner."""

    #: Target maximum number of operators per partition.
    max_operators: int = 10
    #: How many positions before the limit the partitioner may cut early if it
    #: finds a narrower boundary.
    lookback_window: int = 4
    #: Hard upper bound; a partition never exceeds this many operators.
    hard_limit: int = 14


@dataclass
class Partition:
    """One partition: an operator subgraph with its boundary tensors."""

    index: int
    graph: Graph
    node_names: list[str]
    boundary_inputs: list[str] = field(default_factory=list)
    boundary_outputs: list[str] = field(default_factory=list)

    @property
    def num_operators(self) -> int:
        return len(self.node_names)


class GraphPartitioner:
    """Splits an operator graph into a sequence of smaller subgraphs."""

    def __init__(self, config: PartitionConfig | None = None) -> None:
        self.config = config or PartitionConfig()

    # ------------------------------------------------------------------ api
    def partition(self, graph: Graph) -> list[Partition]:
        """Partition ``graph``; concatenating the partitions in order is
        execution-equivalent to the original graph."""
        order = graph.topological_order()
        if not order:
            return []
        groups = self._split_positions(graph, order)
        partitions = [
            self._build_partition(graph, index, group) for index, group in enumerate(groups)
        ]
        return partitions

    # ------------------------------------------------------------- internals
    def _split_positions(self, graph: Graph, order: list[Node]) -> list[list[Node]]:
        """Greedy accumulation with narrow-cut preference."""
        consumer_map = graph.consumer_map()
        cut_width: list[int] = []
        produced: set[str] = set()
        for position, node in enumerate(order):
            produced.update(node.outputs)
            live = 0
            remaining = {n.name for n in order[position + 1 :]}
            for tensor in produced:
                consumers = consumer_map.get(tensor, [])
                if tensor in graph.outputs or any(c.name in remaining for c in consumers):
                    live += 1
            cut_width.append(live)

        groups: list[list[Node]] = []
        current: list[Node] = []
        start = 0
        for position, node in enumerate(order):
            current.append(node)
            should_cut = False
            if len(current) >= self.config.hard_limit:
                should_cut = True
            elif len(current) >= self.config.max_operators:
                window_start = max(start, position - self.config.lookback_window)
                best = min(range(window_start, position + 1), key=lambda i: cut_width[i])
                if best < position:
                    # Retroactively cut at the narrower earlier point.
                    keep = best - start + 1
                    groups.append(current[:keep])
                    current = current[keep:]
                    start = best + 1
                    continue
                should_cut = True
            if should_cut:
                groups.append(current)
                current = []
                start = position + 1
        if current:
            groups.append(current)
        return groups

    def _build_partition(self, graph: Graph, index: int, nodes: list[Node]) -> Partition:
        sub = Graph(f"{graph.name}.part{index}")
        node_set = {node.name for node in nodes}
        external_inputs, external_outputs = graph.subgraph_tensors(nodes)

        for tensor in sorted(external_inputs):
            ttype = graph.tensor_type(tensor)
            if tensor in graph.params:
                sub.add_param(tensor, ttype)
            elif tensor in graph.constants:
                sub.add_constant(tensor, graph.constants[tensor])
            else:
                sub.add_input(tensor, ttype)

        for node in nodes:
            for tensor in node.outputs:
                sub.add_tensor(tensor, graph.tensor_type(tensor))
        for node in nodes:
            sub.add_node(Node(node.name, node.op_type, list(node.inputs), list(node.outputs), dict(node.attrs)))

        for tensor in sorted(external_outputs):
            sub.add_output(tensor)
        # Graph outputs produced in this partition are partition outputs too.
        for tensor in graph.outputs:
            producer = graph.producer(tensor)
            if producer is not None and producer.name in node_set:
                sub.add_output(tensor)

        return Partition(
            index=index,
            graph=sub,
            node_names=[node.name for node in nodes],
            boundary_inputs=[t for t in sub.inputs],
            boundary_outputs=list(sub.outputs),
        )


def partition_graph(graph: Graph, max_operators: int = 8) -> list[Partition]:
    """Convenience wrapper around :class:`GraphPartitioner`."""
    return GraphPartitioner(PartitionConfig(max_operators=max_operators)).partition(graph)
