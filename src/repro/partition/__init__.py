"""Computation-graph partitioning (Figure 1's first stage)."""

from .partitioner import GraphPartitioner, Partition, PartitionConfig, partition_graph

__all__ = ["GraphPartitioner", "Partition", "PartitionConfig", "partition_graph"]
