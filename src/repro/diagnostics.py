"""Structured diagnostics shared by the verification and linting layers.

Every static check in the repository — graph validation
(:mod:`repro.ir.validation`), the rewrite/plan verifiers and the concurrency
linter (:mod:`repro.analysis.verify`) — reports findings as
:class:`Diagnostic` records instead of bare exceptions: a stable rule id, a
severity, a human-readable message, a location, and a fix hint.  Callers that
want exception semantics raise :class:`DiagnosticError`, which carries the
full record list, so nothing is lost when a check escalates.

This module is a dependency leaf on purpose: the IR layer and the analysis
layer both import it, and it imports nothing from ``repro``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = [
    "Severity",
    "Diagnostic",
    "DiagnosticError",
    "errors",
    "has_errors",
    "format_diagnostics",
]


class Severity(enum.Enum):
    """How bad a finding is; gates (CI, verify_level) fail on ERROR only."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static check.

    Attributes
    ----------
    rule:
        Stable rule identifier, namespaced by layer — e.g.
        ``"graph/multi-producer"``, ``"plan/uncovered-node"``,
        ``"conc/global-mutation"``.  Tests and suppression pragmas key on it.
    severity:
        :class:`Severity`; gates fail on :attr:`Severity.ERROR` only.
    message:
        Human-readable statement of the violation.
    location:
        Where it was found: ``"file.py:42"`` for lint findings,
        ``"candy/partition[0]/kernel[3]"`` for plan findings,
        ``"graph 'candy'"`` for graph findings.
    hint:
        Optional fix hint shown alongside the message.
    """

    rule: str
    severity: Severity
    message: str
    location: str = ""
    hint: str = ""

    def format(self) -> str:
        """``location: severity[rule] message (hint)`` single-line rendering."""
        prefix = f"{self.location}: " if self.location else ""
        suffix = f" (hint: {self.hint})" if self.hint else ""
        return f"{prefix}{self.severity.value}[{self.rule}] {self.message}{suffix}"

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location,
            "hint": self.hint,
        }


def errors(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    """The ERROR-severity subset of ``diagnostics``."""
    return [d for d in diagnostics if d.severity is Severity.ERROR]


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """True when any diagnostic is ERROR severity."""
    return any(d.severity is Severity.ERROR for d in diagnostics)


def format_diagnostics(diagnostics: Sequence[Diagnostic]) -> str:
    """Multi-line rendering, one finding per line."""
    return "\n".join(d.format() for d in diagnostics)


@dataclass
class DiagnosticError(RuntimeError):
    """A check failed with one or more ERROR-severity diagnostics.

    The exception message lists every finding (not just the first), and the
    structured records stay available on :attr:`diagnostics`.
    """

    summary: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def __post_init__(self) -> None:
        details = format_diagnostics(self.diagnostics)
        message = f"{self.summary}\n{details}" if details else self.summary
        super().__init__(message)
