"""Base classes for tensor algebra primitives (§3 of the paper).

Operator fission decomposes every DNN operator into primitives drawn from
four categories — *elementwise*, *reduce/broadcast*, *layout transformation*
and *linear transformation* — plus an *opaque* escape hatch for operators
(e.g. TopK) that fit none of them.  Each primitive carries

* a single, uniform degree of parallelism and data-access pattern, which is
  what makes it efficient to execute inside one kernel, and
* enough semantics to be executed functionally on numpy arrays, so that the
  runtime can verify that orchestrated executables are equivalent to the
  original model.
"""

from __future__ import annotations

import abc
import enum
from typing import Any, Mapping, Sequence

import numpy as np

from ..ir.tensor_type import TensorType

__all__ = ["PrimitiveCategory", "Primitive"]


class PrimitiveCategory(str, enum.Enum):
    """The four primitive categories of §3, plus opaque."""

    ELEMENTWISE = "elementwise"
    REDUCE = "reduce"
    BROADCAST = "broadcast"
    LAYOUT = "layout"
    LINEAR = "linear"
    OPAQUE = "opaque"

    @property
    def is_memory_bound(self) -> bool:
        """Whether kernels made only of this category are memory-intensive.

        Korch's profiler (§5.2) routes candidate kernels without any linear
        transformation primitive to TVM MetaSchedule and treats them as
        memory-intensive; kernels containing a linear transformation go to
        vendor libraries.
        """
        return self is not PrimitiveCategory.LINEAR


class Primitive(abc.ABC):
    """A single tensor algebra primitive.

    Subclasses define the category, the output type inference, the numpy
    reference semantics (:meth:`compute`) and the arithmetic cost
    (:meth:`flops`).  Instances are immutable value objects: equality and
    hashing are defined over ``(op, sorted attrs)`` so that graph
    transformations can compare rewritten nodes.
    """

    category: PrimitiveCategory

    def __init__(self, op: str, **attrs: Any) -> None:
        self.op = op
        self.attrs: dict[str, Any] = dict(attrs)

    # ------------------------------------------------------------ semantics
    @abc.abstractmethod
    def infer_type(self, input_types: Sequence[TensorType]) -> TensorType:
        """Output tensor type given input types."""

    @abc.abstractmethod
    def compute(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        """Reference numpy execution."""

    def flops(self, input_types: Sequence[TensorType], output_type: TensorType) -> int:
        """Floating point operations performed by this primitive.

        The default counts one operation per output element, which is correct
        for elementwise/reduce/broadcast primitives; layout primitives
        override it to zero and linear primitives to the usual 2·M·N·K-style
        counts.
        """
        return output_type.num_elements

    # ----------------------------------------------------------------- info
    @property
    def is_linear(self) -> bool:
        """True for linear transformation primitives (GEMM/conv family)."""
        return self.category is PrimitiveCategory.LINEAR

    @property
    def is_memory_bound(self) -> bool:
        """True for primitives whose cost is dominated by memory traffic."""
        return self.category.is_memory_bound

    def attr(self, key: str, default: Any = None) -> Any:
        """Attribute lookup with default."""
        return self.attrs.get(key, default)

    def signature(self) -> tuple:
        """Hashable identity of the primitive (category, op, attrs)."""
        return (
            self.category.value,
            self.op,
            tuple(sorted((k, _freeze(v)) for k, v in self.attrs.items())),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Primitive):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        attrs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.attrs.items()))
        return f"{type(self).__name__}({self.op}{', ' + attrs if attrs else ''})"


def _freeze(value: Any) -> Any:
    """Convert attribute values into hashable equivalents."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, Mapping):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, np.ndarray):
        return (value.shape, value.dtype.str, value.tobytes())
    return value
