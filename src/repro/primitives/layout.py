"""Layout transformation primitives.

A layout transformation moves data without arithmetic: the output at position
x is the input at position L(x) for a one-to-one mapping L.  Transpose,
Reshape, Slice, Pad, Concat and Resize all fall in this category; Split is
decomposed by the fission engine into one Slice per output so that every
primitive keeps a single output tensor (footnote 1 of the paper).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..ir.tensor_type import TensorType
from .base import Primitive, PrimitiveCategory

__all__ = ["LayoutPrimitive", "LAYOUT_OPS"]

LAYOUT_OPS = ("Transpose", "Reshape", "Slice", "Pad", "Concat", "Resize")


def _normalize_axis(axis: int, rank: int) -> int:
    if axis < 0:
        axis += rank
    if not 0 <= axis < rank:
        raise ValueError(f"axis {axis} out of range for rank {rank}")
    return axis


class LayoutPrimitive(Primitive):
    """Data movement primitive with zero arithmetic cost.

    Supported ops and their attributes:

    ``Transpose``
        ``perm`` — dimension permutation.
    ``Reshape``
        ``shape`` — static target shape (no ``-1`` wildcards at this level).
    ``Slice``
        ``starts``, ``ends``, ``axes``, ``steps`` — static strided slice.
    ``Pad``
        ``pads`` (begin..., end...), ``value`` — constant padding.
    ``Concat``
        ``axis`` — concatenation axis; the only multi-input layout primitive.
    ``Resize``
        ``scales`` or ``sizes``, ``mode`` ∈ {nearest, bilinear} — spatial
        up-sampling used by Segformer's MLP decoder.
    """

    category = PrimitiveCategory.LAYOUT

    def __init__(self, op: str, **attrs) -> None:
        if op not in LAYOUT_OPS:
            raise ValueError(f"unknown layout op {op!r}; known: {LAYOUT_OPS}")
        super().__init__(op, **attrs)

    # ------------------------------------------------------------ inference
    def infer_type(self, input_types: Sequence[TensorType]) -> TensorType:
        if self.op == "Concat":
            return self._infer_concat(input_types)
        (x,) = input_types
        if self.op == "Transpose":
            return x.transpose(self.attr("perm"))
        if self.op == "Reshape":
            shape = tuple(self.attr("shape"))
            if math.prod(shape) != x.num_elements:
                raise ValueError(f"Reshape: cannot reshape {x.shape} to {shape}")
            return x.with_shape(shape)
        if self.op == "Slice":
            return self._infer_slice(x)
        if self.op == "Pad":
            pads = self.attr("pads")
            shape = [d + pads[i] + pads[i + x.rank] for i, d in enumerate(x.shape)]
            return x.with_shape(shape)
        # Resize
        sizes = tuple(self.attr("sizes") or ())
        if sizes:
            return x.with_shape(sizes)
        scales = tuple(self.attr("scales"))
        return x.with_shape(tuple(int(round(d * s)) for d, s in zip(x.shape, scales)))

    def _infer_concat(self, input_types: Sequence[TensorType]) -> TensorType:
        axis = _normalize_axis(self.attr("axis", 0), input_types[0].rank)
        shape = list(input_types[0].shape)
        shape[axis] = sum(t.shape[axis] for t in input_types)
        return input_types[0].with_shape(shape)

    def _infer_slice(self, x: TensorType) -> TensorType:
        starts = tuple(self.attr("starts"))
        ends = tuple(self.attr("ends"))
        axes = tuple(self.attr("axes") or range(len(starts)))
        steps = tuple(self.attr("steps") or (1,) * len(starts))
        shape = list(x.shape)
        for start, end, axis, step in zip(starts, ends, axes, steps):
            axis = _normalize_axis(axis, x.rank)
            dim = x.shape[axis]
            start = min(max(start + dim if start < 0 else start, 0), dim)
            end = min(max(end + dim if end < 0 else end, 0), dim)
            shape[axis] = max(0, -(-(end - start) // step))
        return x.with_shape(shape)

    # ------------------------------------------------------------ execution
    def compute(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        if self.op == "Concat":
            axis = _normalize_axis(self.attr("axis", 0), inputs[0].ndim)
            return np.concatenate(list(inputs), axis=axis)
        (x,) = inputs
        if self.op == "Transpose":
            return np.transpose(x, self.attr("perm"))
        if self.op == "Reshape":
            return np.reshape(x, tuple(self.attr("shape")))
        if self.op == "Slice":
            return self._compute_slice(x)
        if self.op == "Pad":
            pads = self.attr("pads")
            rank = x.ndim
            pad_width = [(pads[i], pads[i + rank]) for i in range(rank)]
            return np.pad(x, pad_width, constant_values=float(self.attr("value", 0.0)))
        return self._compute_resize(x)

    def _compute_slice(self, x: np.ndarray) -> np.ndarray:
        starts = tuple(self.attr("starts"))
        ends = tuple(self.attr("ends"))
        axes = tuple(self.attr("axes") or range(len(starts)))
        steps = tuple(self.attr("steps") or (1,) * len(starts))
        index: list[slice] = [slice(None)] * x.ndim
        for start, end, axis, step in zip(starts, ends, axes, steps):
            axis = _normalize_axis(axis, x.ndim)
            index[axis] = slice(start, end, step)
        return x[tuple(index)]

    def _compute_resize(self, x: np.ndarray) -> np.ndarray:
        target = self.infer_type([TensorType(x.shape)]).shape
        mode = self.attr("mode", "nearest")
        out = x
        for axis, (src, dst) in enumerate(zip(x.shape, target)):
            if src == dst:
                continue
            if mode == "nearest":
                idx = np.minimum((np.arange(dst) * src / dst).astype(np.int64), src - 1)
                out = np.take(out, idx, axis=axis)
            else:  # bilinear along this axis
                pos = (np.arange(dst) + 0.5) * src / dst - 0.5
                low = np.clip(np.floor(pos).astype(np.int64), 0, src - 1)
                high = np.clip(low + 1, 0, src - 1)
                frac = np.clip(pos - low, 0.0, 1.0)
                shape = [1] * out.ndim
                shape[axis] = dst
                frac = frac.reshape(shape)
                out = np.take(out, low, axis=axis) * (1 - frac) + np.take(out, high, axis=axis) * frac
            x = out
            src = dst
        return out

    def flops(self, input_types: Sequence[TensorType], output_type: TensorType) -> int:
        # Pure data movement; bilinear resize does interpolation arithmetic.
        if self.op == "Resize" and self.attr("mode", "nearest") != "nearest":
            return 3 * output_type.num_elements
        return 0
