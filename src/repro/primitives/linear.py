"""Linear transformation primitives.

These capture the compute-intensive operators: matrix multiplication (plain
and batched), 2D convolution and transposed convolution.  A primitive is
linear when its output is linear in every input tensor (§3); these are the
primitives Korch lowers to vendor libraries (cuBLAS/cuDNN) rather than to
TVM-generated code.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..ir.shape_inference import broadcast_shapes
from ..ir.tensor_type import TensorType
from .base import Primitive, PrimitiveCategory

__all__ = ["MatMulPrimitive", "ConvPrimitive", "ConvTransposePrimitive"]


class MatMulPrimitive(Primitive):
    """(Batched) matrix multiplication ``A @ B`` with numpy batch broadcasting."""

    category = PrimitiveCategory.LINEAR

    def __init__(self) -> None:
        super().__init__("MatMul")

    def infer_type(self, input_types: Sequence[TensorType]) -> TensorType:
        a, b = input_types
        if a.rank < 2 or b.rank < 2:
            raise ValueError("MatMul inputs must be at least rank 2")
        if a.shape[-1] != b.shape[-2]:
            raise ValueError(f"MatMul inner dimension mismatch: {a.shape} @ {b.shape}")
        batch = broadcast_shapes(a.shape[:-2], b.shape[:-2])
        return a.with_shape(batch + (a.shape[-2], b.shape[-1]))

    def compute(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        a, b = inputs
        return np.matmul(a, b)

    def flops(self, input_types: Sequence[TensorType], output_type: TensorType) -> int:
        a, b = input_types
        k = a.shape[-1]
        return 2 * output_type.num_elements * k

    def gemm_dims(self, input_types: Sequence[TensorType]) -> tuple[int, int, int, int]:
        """(batch, M, N, K) of the underlying GEMM, used by the cuBLAS model."""
        a, b = input_types
        batch_shape = broadcast_shapes(a.shape[:-2], b.shape[:-2])
        batch = int(math.prod(batch_shape)) if batch_shape else 1
        return batch, a.shape[-2], b.shape[-1], a.shape[-1]


class ConvPrimitive(Primitive):
    """2D convolution over NCHW activations with OIHW weights."""

    category = PrimitiveCategory.LINEAR

    def __init__(
        self,
        strides: Sequence[int] = (1, 1),
        pads: Sequence[int] = (0, 0, 0, 0),
        dilations: Sequence[int] = (1, 1),
        group: int = 1,
    ) -> None:
        super().__init__(
            "Conv",
            strides=tuple(strides),
            pads=tuple(pads),
            dilations=tuple(dilations),
            group=int(group),
        )

    def infer_type(self, input_types: Sequence[TensorType]) -> TensorType:
        x, w = input_types[0], input_types[1]
        sh, sw = self.attr("strides")
        dh, dw = self.attr("dilations")
        pads = self.attr("pads")
        group = self.attr("group")
        n, c, h, w_in = x.shape
        oc, ic_per_group, kh, kw = w.shape
        if ic_per_group * group != c:
            raise ValueError(f"Conv channel mismatch: input {c}, weight {ic_per_group}x{group}")
        oh = (h + pads[0] + pads[2] - dh * (kh - 1) - 1) // sh + 1
        ow = (w_in + pads[1] + pads[3] - dw * (kw - 1) - 1) // sw + 1
        return x.with_shape((n, oc, oh, ow))

    def compute(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        x, w = inputs[0], inputs[1]
        bias = inputs[2] if len(inputs) > 2 else None
        out = _conv2d_im2col(
            x,
            w,
            strides=self.attr("strides"),
            pads=self.attr("pads"),
            dilations=self.attr("dilations"),
            group=self.attr("group"),
        )
        if bias is not None:
            out = out + bias.reshape(1, -1, 1, 1)
        return out

    def flops(self, input_types: Sequence[TensorType], output_type: TensorType) -> int:
        w = input_types[1]
        oc, ic_per_group, kh, kw = w.shape
        return 2 * output_type.num_elements * ic_per_group * kh * kw


class ConvTransposePrimitive(Primitive):
    """2D transposed convolution (fractionally-strided convolution)."""

    category = PrimitiveCategory.LINEAR

    def __init__(
        self,
        strides: Sequence[int] = (2, 2),
        pads: Sequence[int] = (1, 1, 1, 1),
        output_padding: Sequence[int] = (1, 1),
        group: int = 1,
    ) -> None:
        super().__init__(
            "ConvTranspose",
            strides=tuple(strides),
            pads=tuple(pads),
            output_padding=tuple(output_padding),
            group=int(group),
        )

    def infer_type(self, input_types: Sequence[TensorType]) -> TensorType:
        x, w = input_types[0], input_types[1]
        sh, sw = self.attr("strides")
        pads = self.attr("pads")
        oph, opw = self.attr("output_padding")
        n, c, h, w_in = x.shape
        ic, oc_per_group, kh, kw = w.shape
        oc = oc_per_group * self.attr("group")
        oh = (h - 1) * sh - pads[0] - pads[2] + kh + oph
        ow = (w_in - 1) * sw - pads[1] - pads[3] + kw + opw
        return x.with_shape((n, oc, oh, ow))

    def compute(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        x, w = inputs[0], inputs[1]
        bias = inputs[2] if len(inputs) > 2 else None
        sh, sw = self.attr("strides")
        pads = self.attr("pads")
        oph, opw = self.attr("output_padding")
        n, c, h, w_in = x.shape
        ic, oc, kh, kw = w.shape
        oh = (h - 1) * sh - pads[0] - pads[2] + kh + oph
        ow = (w_in - 1) * sw - pads[1] - pads[3] + kw + opw
        out = np.zeros((n, oc, oh + pads[0] + pads[2], ow + pads[1] + pads[3]), dtype=x.dtype)
        # Scatter-add each input position's contribution; fine for the small
        # verification graphs the executor runs on.
        for i in range(h):
            for j in range(w_in):
                patch = np.einsum("nc,cokl->nokl", x[:, :, i, j], w)
                out[:, :, i * sh : i * sh + kh, j * sw : j * sw + kw] += patch
        out = out[:, :, pads[0] : pads[0] + oh, pads[1] : pads[1] + ow]
        if bias is not None:
            out = out + bias.reshape(1, -1, 1, 1)
        return out

    def flops(self, input_types: Sequence[TensorType], output_type: TensorType) -> int:
        x, w = input_types[0], input_types[1]
        ic, oc_per_group, kh, kw = w.shape
        return 2 * x.num_elements * oc_per_group * kh * kw


def _conv2d_im2col(
    x: np.ndarray,
    w: np.ndarray,
    strides: tuple[int, int],
    pads: tuple[int, int, int, int],
    dilations: tuple[int, int],
    group: int,
) -> np.ndarray:
    """im2col + GEMM reference convolution used by the functional executor."""
    sh, sw = strides
    dh, dw = dilations
    n, c, h, w_in = x.shape
    oc, ic_per_group, kh, kw = w.shape
    x = np.pad(x, ((0, 0), (0, 0), (pads[0], pads[2]), (pads[1], pads[3])))
    oh = (x.shape[2] - dh * (kh - 1) - 1) // sh + 1
    ow = (x.shape[3] - dw * (kw - 1) - 1) // sw + 1
    oc_per_group = oc // group
    out = np.empty((n, oc, oh, ow), dtype=x.dtype)
    for g in range(group):
        xg = x[:, g * ic_per_group : (g + 1) * ic_per_group]
        wg = w[g * oc_per_group : (g + 1) * oc_per_group]
        cols = np.empty((n, ic_per_group * kh * kw, oh * ow), dtype=x.dtype)
        idx = 0
        for ky in range(kh):
            for kx in range(kw):
                patch = xg[
                    :,
                    :,
                    ky * dh : ky * dh + oh * sh : sh,
                    kx * dw : kx * dw + ow * sw : sw,
                ]
                cols[:, idx * ic_per_group : (idx + 1) * ic_per_group] = patch.reshape(
                    n, ic_per_group, -1
                )
                idx += 1
        # Weight layout must match the column layout (kernel-major blocks).
        wg_cols = wg.transpose(2, 3, 1, 0).reshape(kh * kw * ic_per_group, oc_per_group)
        result = np.einsum("nkp,ko->nop", cols, wg_cols)
        out[:, g * oc_per_group : (g + 1) * oc_per_group] = result.reshape(n, oc_per_group, oh, ow)
    return out
