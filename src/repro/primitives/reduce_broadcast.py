"""Reduce and broadcast primitives.

A *reduce* primitive aggregates a tensor along one or more dimensions with an
associative operator (sum, mean, max); a *broadcast* primitive replicates a
tensor along a dimension.  Pooling operators (MaxPool/AveragePool) are
windowed reductions and belong to the same category (Table 1 of the paper).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ir.tensor_type import TensorType
from .base import Primitive, PrimitiveCategory

__all__ = ["ReducePrimitive", "BroadcastPrimitive", "WindowReducePrimitive", "REDUCE_OPS"]

REDUCE_OPS = ("Sum", "Mean", "Max")


def _normalize_axes(axes: Sequence[int], rank: int) -> tuple[int, ...]:
    normalized = []
    for axis in axes:
        if axis < 0:
            axis += rank
        if not 0 <= axis < rank:
            raise ValueError(f"axis {axis} out of range for rank {rank}")
        normalized.append(axis)
    return tuple(sorted(set(normalized)))


class ReducePrimitive(Primitive):
    """Aggregation along one or more axes.

    Attributes
    ----------
    axes:
        Axes to reduce over.
    keepdims:
        When true (the default used by fission rules), reduced axes are kept
        as size-1 dimensions so that a following :class:`BroadcastPrimitive`
        can expand them back.
    """

    category = PrimitiveCategory.REDUCE

    def __init__(self, op: str = "Sum", axes: Sequence[int] = (-1,), keepdims: bool = True) -> None:
        if op not in REDUCE_OPS:
            raise ValueError(f"unknown reduce op {op!r}; known: {REDUCE_OPS}")
        super().__init__(op, axes=tuple(axes), keepdims=bool(keepdims))

    def infer_type(self, input_types: Sequence[TensorType]) -> TensorType:
        (x,) = input_types
        axes = _normalize_axes(self.attr("axes"), x.rank)
        shape = list(x.shape)
        if self.attr("keepdims"):
            for axis in axes:
                shape[axis] = 1
        else:
            shape = [d for i, d in enumerate(shape) if i not in axes]
        return x.with_shape(shape)

    def compute(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        axes = _normalize_axes(self.attr("axes"), x.ndim)
        keepdims = self.attr("keepdims")
        if self.op == "Sum":
            return np.sum(x, axis=axes, keepdims=keepdims)
        if self.op == "Mean":
            return np.mean(x, axis=axes, keepdims=keepdims)
        return np.max(x, axis=axes, keepdims=keepdims)

    def flops(self, input_types: Sequence[TensorType], output_type: TensorType) -> int:
        # One accumulate per input element; Mean adds a divide per output element.
        flops = input_types[0].num_elements
        if self.op == "Mean":
            flops += output_type.num_elements
        return flops


class BroadcastPrimitive(Primitive):
    """Replicate a tensor along one axis.

    The fission rules keep reduced dimensions (``keepdims=True``) so broadcast
    always expands an existing size-1 axis to ``size`` elements, matching the
    implicit broadcast performed by ONNX operators (§5.1, footnote 3).
    """

    category = PrimitiveCategory.BROADCAST

    def __init__(self, axis: int, size: int) -> None:
        super().__init__("Broadcast", axis=int(axis), size=int(size))

    def infer_type(self, input_types: Sequence[TensorType]) -> TensorType:
        (x,) = input_types
        axis = _normalize_axes((self.attr("axis"),), x.rank)[0]
        if x.shape[axis] != 1:
            raise ValueError(f"Broadcast: axis {axis} of {x.shape} must be 1")
        shape = list(x.shape)
        shape[axis] = self.attr("size")
        return x.with_shape(shape)

    def compute(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        axis = _normalize_axes((self.attr("axis"),), x.ndim)[0]
        reps = [1] * x.ndim
        reps[axis] = self.attr("size")
        return np.tile(x, reps)

    def flops(self, input_types: Sequence[TensorType], output_type: TensorType) -> int:
        # Pure data replication: no arithmetic.
        return 0


class WindowReducePrimitive(Primitive):
    """Windowed spatial reduction over NCHW tensors (max/average pooling)."""

    category = PrimitiveCategory.REDUCE

    def __init__(
        self,
        op: str = "Max",
        kernel: Sequence[int] = (2, 2),
        strides: Sequence[int] = (2, 2),
        pads: Sequence[int] = (0, 0, 0, 0),
    ) -> None:
        if op not in ("Max", "Mean"):
            raise ValueError(f"unknown window reduce op {op!r}")
        super().__init__(op, kernel=tuple(kernel), strides=tuple(strides), pads=tuple(pads))

    def infer_type(self, input_types: Sequence[TensorType]) -> TensorType:
        (x,) = input_types
        if x.rank != 4:
            raise ValueError(f"window reduce expects NCHW input, got rank {x.rank}")
        kh, kw = self.attr("kernel")
        sh, sw = self.attr("strides")
        pads = self.attr("pads")
        n, c, h, w = x.shape
        oh = (h + pads[0] + pads[2] - kh) // sh + 1
        ow = (w + pads[1] + pads[3] - kw) // sw + 1
        return x.with_shape((n, c, oh, ow))

    def compute(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        kh, kw = self.attr("kernel")
        sh, sw = self.attr("strides")
        pads = self.attr("pads")
        pad_value = -np.inf if self.op == "Max" else 0.0
        x = np.pad(
            x,
            ((0, 0), (0, 0), (pads[0], pads[2]), (pads[1], pads[3])),
            constant_values=pad_value,
        )
        n, c, h, w = x.shape
        oh = (h - kh) // sh + 1
        ow = (w - kw) // sw + 1
        out = np.empty((n, c, oh, ow), dtype=x.dtype)
        for i in range(oh):
            for j in range(ow):
                window = x[:, :, i * sh : i * sh + kh, j * sw : j * sw + kw]
                if self.op == "Max":
                    out[:, :, i, j] = window.max(axis=(2, 3))
                else:
                    out[:, :, i, j] = window.mean(axis=(2, 3))
        return out

    def flops(self, input_types: Sequence[TensorType], output_type: TensorType) -> int:
        kh, kw = self.attr("kernel")
        return output_type.num_elements * kh * kw
