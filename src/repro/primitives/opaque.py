"""Opaque primitives.

Operators such as TopK cannot be expressed with the four primitive categories
(§3, "Supporting new operators").  Korch wraps them in an opaque primitive:
the surrounding graph is still optimized, but the opaque node is never fused
with its neighbours and always runs in its own kernel.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..ir.tensor_type import TensorType
from .base import Primitive, PrimitiveCategory

__all__ = ["OpaquePrimitive"]


class OpaquePrimitive(Primitive):
    """Wrapper for operators outside the primitive algebra.

    Parameters
    ----------
    op:
        Original operator name (e.g. ``"TopK"``).
    output_type:
        Pre-computed output type (shape inference already ran at the operator
        level, so the fission engine passes the known type through).
    compute_fn:
        Optional reference implementation for functional verification.
    attrs:
        Original operator attributes, kept for reporting.
    """

    category = PrimitiveCategory.OPAQUE

    def __init__(
        self,
        op: str,
        output_type: TensorType,
        compute_fn: Callable[[Sequence[np.ndarray]], np.ndarray] | None = None,
        **attrs,
    ) -> None:
        super().__init__(op, output_shape=tuple(output_type.shape), **attrs)
        self._output_type = output_type
        self._compute_fn = compute_fn

    def infer_type(self, input_types: Sequence[TensorType]) -> TensorType:
        return self._output_type

    def compute(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        if self._compute_fn is None:
            raise NotImplementedError(
                f"opaque primitive {self.op!r} has no reference implementation"
            )
        return self._compute_fn(inputs)

    def flops(self, input_types: Sequence[TensorType], output_type: TensorType) -> int:
        # Unknown internals; assume one pass over the input.
        return input_types[0].num_elements if input_types else 0
