"""Primitive graph: the representation Korch optimizes and orchestrates.

A :class:`PrimitiveGraph` is a DAG whose nodes each apply one
:class:`~repro.primitives.base.Primitive` and produce exactly one tensor
(paper footnote 1).  It is produced by the operator fission engine, optimized
by :mod:`repro.transforms`, and consumed by the kernel identifier and the
kernel orchestration optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..ir.dtype import DataType
from ..ir.tensor_type import TensorType
from .base import Primitive, PrimitiveCategory

__all__ = ["PrimitiveNode", "PrimitiveGraph", "PrimitiveGraphError"]


class PrimitiveGraphError(ValueError):
    """Raised when a primitive graph is structurally invalid."""


@dataclass
class PrimitiveNode:
    """Application of one primitive.

    Attributes
    ----------
    name:
        Unique node name.
    prim:
        The primitive being applied.
    inputs:
        Names of the consumed tensors.
    output:
        Name of the single produced tensor.
    source_op:
        Name of the operator-level node this primitive came from (set by the
        fission engine); used by case-study reports such as "Softmax is mapped
        to all four kernels" (§6.4).
    """

    name: str
    prim: Primitive
    inputs: list[str]
    output: str
    source_op: str = ""

    @property
    def category(self) -> PrimitiveCategory:
        return self.prim.category

    @property
    def is_linear(self) -> bool:
        return self.prim.is_linear

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrimitiveNode({self.name}: {self.prim.op} {self.inputs} -> {self.output})"


class PrimitiveGraph:
    """DAG of tensor algebra primitives."""

    def __init__(self, name: str = "primitive_graph") -> None:
        self.name = name
        self.nodes: list[PrimitiveNode] = []
        self.tensors: dict[str, TensorType] = {}
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.params: dict[str, TensorType] = {}
        self.constants: dict[str, np.ndarray] = {}
        self._producer: dict[str, PrimitiveNode] = {}
        self._next_id = 0
        self._reserved: set[str] = set()

    # ------------------------------------------------------------------ build
    def reserve_names(self, names: Iterable[str]) -> None:
        """Reserve tensor names that will be declared later (e.g. the
        operator-level tensor names the fission engine will emit), so
        :meth:`unique_name` never collides with them."""
        self._reserved.update(names)

    def unique_name(self, prefix: str) -> str:
        """Generate a fresh tensor/node name."""
        while True:
            candidate = f"{prefix}_{self._next_id}"
            self._next_id += 1
            if candidate not in self.tensors and candidate not in self._reserved:
                return candidate

    def add_tensor(self, name: str, ttype: TensorType) -> str:
        existing = self.tensors.get(name)
        if existing is not None and existing != ttype:
            raise PrimitiveGraphError(
                f"tensor {name!r} re-declared with type {ttype} != {existing}"
            )
        self.tensors[name] = ttype
        return name

    def add_input(self, name: str, ttype: TensorType) -> str:
        self.add_tensor(name, ttype)
        if name not in self.inputs:
            self.inputs.append(name)
        return name

    def add_param(self, name: str, ttype: TensorType) -> str:
        self.add_tensor(name, ttype)
        self.params[name] = ttype
        return name

    def add_constant(self, name: str, value: np.ndarray) -> str:
        value = np.asarray(value)
        self.add_tensor(name, TensorType(value.shape, DataType.from_numpy(value.dtype)))
        self.constants[name] = value
        return name

    def add_output(self, name: str) -> str:
        if name not in self.tensors:
            raise PrimitiveGraphError(f"cannot mark unknown tensor {name!r} as output")
        if name not in self.outputs:
            self.outputs.append(name)
        return name

    def add_node(
        self,
        prim: Primitive,
        inputs: Sequence[str],
        output: str | None = None,
        name: str | None = None,
        source_op: str = "",
    ) -> PrimitiveNode:
        """Apply ``prim`` to ``inputs``; infers and declares the output tensor."""
        for tensor in inputs:
            if tensor not in self.tensors:
                raise PrimitiveGraphError(f"unknown input tensor {tensor!r}")
        input_types = [self.tensors[t] for t in inputs]
        output_type = prim.infer_type(input_types)
        node_name = name or self.unique_name(prim.op.lower())
        output = output or self.unique_name(f"{node_name}_out")
        if output in self._producer:
            raise PrimitiveGraphError(f"tensor {output!r} already has a producer")
        self.add_tensor(output, output_type)
        node = PrimitiveNode(node_name, prim, list(inputs), output, source_op)
        self.nodes.append(node)
        self._producer[output] = node
        return node

    def remove_node(self, node: PrimitiveNode) -> None:
        """Remove ``node``; its output tensor remains declared but unproduced."""
        self.nodes.remove(node)
        self._producer.pop(node.output, None)

    def rename_output(self, node: PrimitiveNode, new_name: str) -> None:
        """Rename a node's output tensor, updating consumers."""
        old = node.output
        ttype = self.tensors[old]
        self.add_tensor(new_name, ttype)
        node.output = new_name
        self._producer.pop(old, None)
        self._producer[new_name] = node
        for other in self.nodes:
            other.inputs = [new_name if t == old else t for t in other.inputs]
        self.outputs = [new_name if t == old else t for t in self.outputs]

    # ------------------------------------------------------------------ query
    def producer(self, tensor: str) -> PrimitiveNode | None:
        """Node producing ``tensor`` (None for graph sources)."""
        return self._producer.get(tensor)

    def consumers(self, tensor: str) -> list[PrimitiveNode]:
        """All nodes consuming ``tensor``."""
        return [node for node in self.nodes if tensor in node.inputs]

    def is_source_tensor(self, tensor: str) -> bool:
        """True for graph inputs, params and constants."""
        return tensor in self.inputs or tensor in self.params or tensor in self.constants

    def tensor_type(self, name: str) -> TensorType:
        try:
            return self.tensors[name]
        except KeyError:
            raise PrimitiveGraphError(f"unknown tensor {name!r}") from None

    def node(self, name: str) -> PrimitiveNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise PrimitiveGraphError(f"unknown node {name!r}")

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[PrimitiveNode]:
        return iter(self.nodes)

    # ------------------------------------------------------------- structure
    def predecessors(self, node: PrimitiveNode) -> list[PrimitiveNode]:
        """Producing nodes of ``node``'s inputs (deduplicated, order preserved)."""
        preds: list[PrimitiveNode] = []
        for tensor in node.inputs:
            pred = self._producer.get(tensor)
            if pred is not None and pred not in preds:
                preds.append(pred)
        return preds

    def successors(self, node: PrimitiveNode) -> list[PrimitiveNode]:
        """Nodes consuming ``node``'s output."""
        return self.consumers(node.output)

    def topological_order(self) -> list[PrimitiveNode]:
        """Nodes in execution order; raises on cycles."""
        indegree: dict[str, int] = {}
        dependents: dict[str, list[PrimitiveNode]] = {}
        for node in self.nodes:
            preds = self.predecessors(node)
            indegree[node.name] = len(preds)
            for pred in preds:
                dependents.setdefault(pred.name, []).append(node)
        ready = [node for node in self.nodes if indegree[node.name] == 0]
        order: list[PrimitiveNode] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for succ in dependents.get(node.name, []):
                indegree[succ.name] -= 1
                if indegree[succ.name] == 0:
                    ready.append(succ)
        if len(order) != len(self.nodes):
            raise PrimitiveGraphError(f"primitive graph {self.name!r} contains a cycle")
        return order

    def reachability(self) -> dict[str, frozenset[str]]:
        """Map node name -> names of all nodes reachable from it (descendants).

        Used by the convex-subgraph check and by the kernel identifier.
        """
        order = self.topological_order()
        reach: dict[str, set[str]] = {node.name: set() for node in self.nodes}
        for node in reversed(order):
            for succ in self.successors(node):
                reach[node.name].add(succ.name)
                reach[node.name] |= reach[succ.name]
        return {name: frozenset(nodes) for name, nodes in reach.items()}

    def ancestors(self, node: PrimitiveNode) -> set[str]:
        """Names of every node that must execute before ``node``."""
        seen: set[str] = set()
        stack = list(self.predecessors(node))
        while stack:
            current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            stack.extend(self.predecessors(current))
        return seen

    def output_nodes(self) -> list[PrimitiveNode]:
        """Nodes whose output tensor is a graph output."""
        return [node for node in self.nodes if node.output in self.outputs]

    def subset_io(self, nodes: Iterable[PrimitiveNode]) -> tuple[list[str], list[str]]:
        """External input tensors and required output tensors of a node subset.

        External inputs are tensors consumed inside the subset but produced
        outside it (or graph sources).  Required outputs are tensors produced
        inside the subset that are graph outputs or consumed outside it.
        """
        subset = {node.name for node in nodes}
        produced = {node.output for node in self.nodes if node.name in subset}
        external_inputs: list[str] = []
        for node in self.nodes:
            if node.name not in subset:
                continue
            for tensor in node.inputs:
                if tensor not in produced and tensor not in external_inputs:
                    external_inputs.append(tensor)
        required_outputs: list[str] = []
        for node in self.nodes:
            if node.name not in subset:
                continue
            tensor = node.output
            needed = tensor in self.outputs or any(
                consumer.name not in subset for consumer in self.consumers(tensor)
            )
            if needed and tensor not in required_outputs:
                required_outputs.append(tensor)
        return external_inputs, required_outputs

    # ------------------------------------------------------------------ misc
    def validate(self) -> None:
        """Structural validation: declared tensors, single producers, acyclicity."""
        produced: set[str] = set()
        for node in self.nodes:
            for tensor in node.inputs:
                if tensor not in self.tensors:
                    raise PrimitiveGraphError(f"node {node.name}: undeclared input {tensor!r}")
            if node.output not in self.tensors:
                raise PrimitiveGraphError(f"node {node.name}: undeclared output {node.output!r}")
            if node.output in produced:
                raise PrimitiveGraphError(f"tensor {node.output!r} has multiple producers")
            produced.add(node.output)
        for node in self.nodes:
            for tensor in node.inputs:
                if tensor not in produced and not self.is_source_tensor(tensor):
                    raise PrimitiveGraphError(
                        f"node {node.name}: input {tensor!r} has no producer and is not a source"
                    )
        for tensor in self.outputs:
            if tensor not in produced and not self.is_source_tensor(tensor):
                raise PrimitiveGraphError(f"graph output {tensor!r} has no producer")
        self.topological_order()

    def category_histogram(self) -> dict[str, int]:
        """Count of primitives per category."""
        histogram: dict[str, int] = {}
        for node in self.nodes:
            key = node.category.value
            histogram[key] = histogram.get(key, 0) + 1
        return dict(sorted(histogram.items()))

    def stats(self) -> dict[str, int]:
        """Size statistics used by Table 2 style reports."""
        return {
            "num_primitives": len(self.nodes),
            "num_linear": sum(1 for n in self.nodes if n.is_linear),
            "num_tensors": len(self.tensors),
            "num_inputs": len(self.inputs),
            "num_outputs": len(self.outputs),
        }

    def copy(self) -> "PrimitiveGraph":
        """Deep-ish copy: nodes and structure are copied, primitives shared."""
        clone = PrimitiveGraph(self.name)
        clone.tensors = dict(self.tensors)
        clone.inputs = list(self.inputs)
        clone.outputs = list(self.outputs)
        clone.params = dict(self.params)
        clone.constants = dict(self.constants)
        # Name-generation state must survive the copy: transforms generate
        # fresh names on copies, and a reset counter could mint a *node* name
        # that collides with an existing node (node names are not tensors, so
        # unique_name alone cannot detect the clash).
        clone._next_id = self._next_id
        clone._reserved = set(self._reserved)
        for node in self.nodes:
            copied = PrimitiveNode(node.name, node.prim, list(node.inputs), node.output, node.source_op)
            clone.nodes.append(copied)
            clone._producer[copied.output] = copied
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrimitiveGraph({self.name!r}, primitives={len(self.nodes)})"
