"""Tensor algebra primitives and primitive graphs (§3 of the paper)."""

from .base import Primitive, PrimitiveCategory
from .elementwise import ELEMENTWISE_OPS, ElementwisePrimitive
from .graph import PrimitiveGraph, PrimitiveGraphError, PrimitiveNode
from .layout import LAYOUT_OPS, LayoutPrimitive
from .linear import ConvPrimitive, ConvTransposePrimitive, MatMulPrimitive
from .opaque import OpaquePrimitive
from .reduce_broadcast import (
    REDUCE_OPS,
    BroadcastPrimitive,
    ReducePrimitive,
    WindowReducePrimitive,
)
from .registry import REPRESENTATIVE_OPERATORS, category_of_operator

__all__ = [
    "Primitive",
    "PrimitiveCategory",
    "ElementwisePrimitive",
    "ELEMENTWISE_OPS",
    "ReducePrimitive",
    "BroadcastPrimitive",
    "WindowReducePrimitive",
    "REDUCE_OPS",
    "LayoutPrimitive",
    "LAYOUT_OPS",
    "MatMulPrimitive",
    "ConvPrimitive",
    "ConvTransposePrimitive",
    "OpaquePrimitive",
    "PrimitiveNode",
    "PrimitiveGraph",
    "PrimitiveGraphError",
    "REPRESENTATIVE_OPERATORS",
    "category_of_operator",
]
