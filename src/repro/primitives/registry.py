"""Mapping between DNN operators and primitive categories (Table 1).

The table is used in two places: tests assert that the fission rules respect
it, and the DNNFusion-style baseline uses the categories as its operator
classification.
"""

from __future__ import annotations

from .base import PrimitiveCategory

__all__ = ["REPRESENTATIVE_OPERATORS", "category_of_operator"]

# Table 1 of the paper: representative operators of each primitive type,
# extended with the operators that appear in this repo's model zoo.
REPRESENTATIVE_OPERATORS: dict[PrimitiveCategory, tuple[str, ...]] = {
    PrimitiveCategory.ELEMENTWISE: (
        "Add", "Sub", "Mul", "Div", "Relu", "Sqrt", "Erf",
        "Sigmoid", "Tanh", "Exp", "LeakyRelu", "Clip",
    ),
    PrimitiveCategory.REDUCE: (
        "ReduceSum", "ReduceMean", "ReduceMax", "MaxPool", "AveragePool", "GlobalAveragePool",
    ),
    PrimitiveCategory.BROADCAST: ("Broadcast", "Expand"),
    PrimitiveCategory.LAYOUT: (
        "Transpose", "Split", "Concat", "Slice", "Pad", "Reshape", "Flatten",
        "Squeeze", "Unsqueeze", "Resize",
    ),
    PrimitiveCategory.LINEAR: ("Conv", "ConvTranspose", "MatMul", "Gemm"),
    PrimitiveCategory.OPAQUE: ("TopK",),
}


def category_of_operator(op_type: str) -> PrimitiveCategory | None:
    """Primitive category a *simple* operator maps to, or ``None`` for
    composite operators (Softmax, normalizations, Gelu, ...) that fission
    expands into several primitives."""
    for category, ops in REPRESENTATIVE_OPERATORS.items():
        if op_type in ops:
            return category
    return None
