"""Elementwise primitives.

An elementwise primitive computes each output element from the input elements
at the same position (after numpy broadcasting of trailing unit dimensions,
which is how ONNX models express bias additions and scale multiplications).
They carry the lowest arithmetic intensity of all primitives and are the
natural candidates for fusion as pre-/post-processing of other kernels (§3).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from scipy import special

from ..ir.shape_inference import broadcast_shapes
from ..ir.tensor_type import TensorType
from .base import Primitive, PrimitiveCategory

__all__ = ["ElementwisePrimitive", "ELEMENTWISE_OPS"]


def _leaky_relu(x: np.ndarray, alpha: float) -> np.ndarray:
    return np.where(x >= 0, x, alpha * x)


def _clip(x: np.ndarray, minimum: float, maximum: float) -> np.ndarray:
    return np.clip(x, minimum, maximum)


# Unary operators: name -> (callable, flops per element)
_UNARY: dict[str, tuple[Callable[..., np.ndarray], int]] = {
    "Exp": (np.exp, 1),
    "Log": (np.log, 1),
    "Sqrt": (np.sqrt, 1),
    "Erf": (special.erf, 2),
    "Neg": (np.negative, 1),
    "Reciprocal": (np.reciprocal, 1),
    "Relu": (lambda x: np.maximum(x, 0), 1),
    "Sigmoid": (special.expit, 2),
    "Tanh": (np.tanh, 2),
    "Identity": (lambda x: x, 0),
    "Softplus": (lambda x: np.logaddexp(x, 0.0), 2),
    "LeakyRelu": (_leaky_relu, 1),
    "Clip": (_clip, 1),
}

# Binary operators: name -> (callable, flops per element)
_BINARY: dict[str, tuple[Callable[[np.ndarray, np.ndarray], np.ndarray], int]] = {
    "Add": (np.add, 1),
    "Sub": (np.subtract, 1),
    "Mul": (np.multiply, 1),
    "Div": (np.divide, 1),
    "Pow": (np.power, 1),
    "Maximum": (np.maximum, 1),
    "Minimum": (np.minimum, 1),
}

ELEMENTWISE_OPS = tuple(sorted(set(_UNARY) | set(_BINARY)))


class ElementwisePrimitive(Primitive):
    """Unary or binary elementwise computation.

    Parameters
    ----------
    op:
        One of :data:`ELEMENTWISE_OPS`.
    attrs:
        Operator-specific scalars, e.g. ``alpha`` for LeakyRelu or
        ``min``/``max`` for Clip.
    """

    category = PrimitiveCategory.ELEMENTWISE

    def __init__(self, op: str, **attrs) -> None:
        if op not in _UNARY and op not in _BINARY:
            raise ValueError(f"unknown elementwise op {op!r}; known: {ELEMENTWISE_OPS}")
        super().__init__(op, **attrs)

    @property
    def arity(self) -> int:
        """Number of tensor inputs (1 or 2)."""
        return 1 if self.op in _UNARY else 2

    def infer_type(self, input_types: Sequence[TensorType]) -> TensorType:
        if len(input_types) != self.arity:
            raise ValueError(f"{self.op}: expected {self.arity} inputs, got {len(input_types)}")
        if self.arity == 1:
            return input_types[0]
        shape = broadcast_shapes(input_types[0].shape, input_types[1].shape)
        return TensorType(shape, input_types[0].dtype)

    def compute(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        if self.op in _UNARY:
            fn, _ = _UNARY[self.op]
            (x,) = inputs
            if self.op == "LeakyRelu":
                return fn(x, float(self.attr("alpha", 0.1)))
            if self.op == "Clip":
                return fn(x, float(self.attr("min", 0.0)), float(self.attr("max", 6.0)))
            return fn(x)
        fn, _ = _BINARY[self.op]
        a, b = inputs
        return fn(a, b)

    def flops(self, input_types: Sequence[TensorType], output_type: TensorType) -> int:
        per_element = (_UNARY.get(self.op) or _BINARY[self.op])[1]
        return per_element * output_type.num_elements
