"""Setuptools shim.

The project metadata lives in pyproject.toml; this file exists so that
editable installs work on environments that lack the `wheel` package
(legacy ``setup.py develop`` path used by ``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
