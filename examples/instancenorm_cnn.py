"""Case study (Figure 12): breaking operator boundaries in a style-transfer CNN.

TensorRT runs InstanceNorm, ReLU and Pad as three separate library kernels.
Korch decomposes InstanceNorm into primitives and fuses its elementwise tail
with the following ReLU and Pad, which is both fewer kernels and less memory
traffic.  The same effect shows up end-to-end on the full Candy network.

Run with:  python examples/instancenorm_cnn.py [--full]
"""

import argparse

from repro.baselines import baseline_suite
from repro.fission import FissionEngine
from repro.gpu import V100
from repro.models import build_candy, build_candy_block
from repro.pipeline import optimize_model


def block_study() -> None:
    graph = build_candy_block()
    pg, _ = FissionEngine().run(graph)
    korch = optimize_model(graph, gpu="V100")
    print(f"InstanceNorm+ReLU+Pad pattern ({graph.num_nodes} operators, {len(pg.nodes)} primitives)")
    print(korch.partitions[0].orchestration.strategy.describe())
    for baseline in baseline_suite(V100):
        strategy = baseline.run(graph, pg)
        print(f"  {baseline.name:10s} {strategy.total_latency_ms:8.4f} ms ({strategy.num_kernels} kernels) "
              f"-> Korch {strategy.total_latency_s / korch.latency_s:.2f}x faster")


def full_model_study() -> None:
    graph = build_candy()
    print(f"\nfull Candy network ({graph.num_nodes} operators) — this takes a minute")
    korch = optimize_model(graph, gpu="V100", enable_graph_optimizer=False)
    pg, _ = FissionEngine().run(graph)
    print(f"  Korch     {korch.latency_ms:8.3f} ms ({korch.num_kernels} kernels)")
    for baseline in baseline_suite(V100):
        strategy = baseline.run(graph, pg)
        print(f"  {baseline.name:10s}{strategy.total_latency_ms:8.3f} ms ({strategy.num_kernels} kernels) "
              f"-> Korch {strategy.total_latency_s / korch.latency_s:.2f}x faster")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="also optimize the full Candy network")
    args = parser.parse_args()
    block_study()
    if args.full:
        full_model_study()


if __name__ == "__main__":
    main()
