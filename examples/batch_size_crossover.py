"""Case study (Figures 11 & 13): greedy fusion can be suboptimal.

TVM always fuses the Segformer MLP-decoder subgraph (four differently-sized
branches resized and concatenated) into one kernel.  That is the right call at
batch size 1, but at batch size 16 the generated kernel's achieved bandwidth
collapses and a multi-kernel plan is ~3x faster.  Korch's BLP picks the right
strategy at each batch size because it profiles both.

Run with:  python examples/batch_size_crossover.py
"""

from repro.baselines import GreedyFusionBaseline
from repro.fission import FissionEngine
from repro.gpu import V100
from repro.models import build_segformer_decoder_subgraph
from repro.orchestration import KernelIdentifierConfig
from repro.partition import PartitionConfig
from repro.pipeline import KorchConfig, KorchPipeline


def main() -> None:
    config = KorchConfig(
        gpu="V100",
        partition=PartitionConfig(max_operators=24, hard_limit=28),
        identifier=KernelIdentifierConfig(max_kernel_size=20),
    )
    for batch in (1, 16):
        graph = build_segformer_decoder_subgraph(batch=batch)
        pg, _ = FissionEngine().run(graph)
        korch = KorchPipeline(config).optimize(graph)
        tvm = GreedyFusionBaseline(V100).run(graph, pg)
        print(f"\nbatch size {batch}:")
        print(f"  TVM (always fuse):   {tvm.total_latency_ms:8.3f} ms  ({tvm.num_kernels} kernel)")
        print(f"  Korch (BLP-chosen):  {korch.latency_ms:8.3f} ms  ({korch.num_kernels} kernels)")
        ratio = tvm.total_latency_s / korch.latency_s
        if ratio >= 1.0:
            print(f"  -> the fused kernel is {ratio:.2f}x slower than Korch's plan")
        else:
            print(f"  -> full fusion is optimal here; Korch picks an equivalent plan "
                  f"({1 / ratio:.2f}x of it)")


if __name__ == "__main__":
    main()
