"""Quickstart: build a small model, run the Korch pipeline, inspect the plan.

Run with:  python examples/quickstart.py
"""

from repro import GraphBuilder, optimize_model
from repro.baselines import baseline_suite
from repro.fission import FissionEngine
from repro.gpu import V100
from repro.runtime import verify_model_executable


def build_tiny_transformer_block():
    """A LayerNorm → attention → MLP block, the kind of subgraph Korch shines on."""
    b = GraphBuilder("tiny_block")
    x = b.input("tokens", (1, 256, 64))

    # Self-attention with softmax (decomposed by operator fission).
    normed = b.layer_norm(x)
    q = b.linear(normed, 64, name="q")
    k = b.linear(normed, 64, name="k")
    v = b.linear(normed, 64, name="v")
    scores = b.matmul(q, b.transpose(k, (0, 2, 1)))
    scores = b.div(scores, b.constant("scale", [8.0]))
    probs = b.softmax(scores, axis=-1)
    attended = b.matmul(probs, v)
    x = b.add(x, b.linear(attended, 64, name="proj"))

    # MLP with GELU.
    y = b.layer_norm(x)
    y = b.linear(y, 256, name="fc1")
    y = b.gelu(y)
    y = b.linear(y, 64, name="fc2")
    b.output(b.add(x, y))
    return b.build()


def main() -> None:
    graph = build_tiny_transformer_block()
    print(f"model: {graph.name} with {graph.num_nodes} operators")

    # Full Korch pipeline: partition -> fission -> graph optimizer -> BLP -> executable.
    result = optimize_model(graph, gpu="V100")
    print(f"\nKorch strategy: {result.num_kernels} kernels, "
          f"{result.latency_ms:.3f} ms predicted on V100")
    for part in result.partitions:
        print(part.orchestration.strategy.describe())

    # The orchestrated executable computes exactly what the model defines.
    verification = verify_model_executable(graph, result.executable)
    print(f"\nfunctional equivalence: {verification.equivalent} "
          f"(max |error| = {verification.max_abs_error:.2e})")

    # Compare with the rule-based fusion baselines of the paper.
    pg, _ = FissionEngine().run(graph)
    print("\nbaseline comparison (lower is better):")
    print(f"  {'Korch':10s} {result.latency_ms:8.3f} ms  ({result.num_kernels} kernels)")
    for baseline in baseline_suite(V100):
        strategy = baseline.run(graph, pg)
        print(f"  {baseline.name:10s} {strategy.total_latency_ms:8.3f} ms  "
              f"({strategy.num_kernels} kernels)")


if __name__ == "__main__":
    main()
