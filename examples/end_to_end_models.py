"""End-to-end optimization of the paper's evaluation models (Figure 6 style).

Optimizes one of the five workloads with Korch and compares against the
PyTorch / TVM / TensorRT fusion baselines on a chosen simulated GPU.

Run with:  python examples/end_to_end_models.py --model candy --gpu V100
"""

import argparse
import time

from repro.analysis import ModelStats, format_table
from repro.baselines import baseline_suite
from repro.fission import FissionEngine
from repro.gpu import get_gpu
from repro.models import MODEL_BUILDERS, build_model
from repro.orchestration import KernelIdentifierConfig
from repro.pipeline import KorchConfig, KorchPipeline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", choices=sorted(MODEL_BUILDERS), default="candy")
    parser.add_argument("--gpu", choices=["P100", "V100", "A100", "H100"], default="V100")
    parser.add_argument("--fast", action="store_true",
                        help="use the coarser benchmark settings (smaller kernels, 10%% MILP gap)")
    args = parser.parse_args()

    graph = build_model(args.model)
    spec = get_gpu(args.gpu)
    print(f"{args.model}: {graph.num_nodes} operators, optimizing for {spec.name}")

    config = KorchConfig(gpu=args.gpu, enable_graph_optimizer=not args.fast)
    if args.fast:
        config.identifier = KernelIdentifierConfig(max_kernel_size=8)
        config.solver_mip_rel_gap = 0.10
        config.solver_time_limit_s = 2.0

    start = time.time()
    result = KorchPipeline(config).optimize(graph)
    print(f"Korch finished in {time.time() - start:.1f}s of tuning-simulation wall time")

    stats = ModelStats.from_result(result)
    print(format_table([stats.as_row()]))

    pg, _ = FissionEngine().run(graph)
    rows = [{"system": "Korch", "latency (ms)": round(result.latency_ms, 3),
             "kernels": result.num_kernels, "vs Korch": 1.0}]
    for baseline in baseline_suite(spec):
        strategy = baseline.run(graph, pg)
        rows.append({
            "system": baseline.name,
            "latency (ms)": round(strategy.total_latency_ms, 3),
            "kernels": strategy.num_kernels,
            "vs Korch": round(strategy.total_latency_s / result.latency_s, 2),
        })
    print(format_table(rows))


if __name__ == "__main__":
    main()
