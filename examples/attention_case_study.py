"""Case study (Figures 2, 4, 8-10): attention blocks under Korch vs TensorRT.

Reproduces the two attention case studies of §6.4 on the simulated V100:

* the Segformer softmax-attention block, where operator fission lets the BLP
  spread Softmax's primitives across several kernels, and
* the EfficientViT ReLU linear-attention block, where Korch both re-lays-out
  an extreme-aspect-ratio GEMM and redundantly executes cheap layout
  primitives to reduce the kernel count.

Run with:  python examples/attention_case_study.py
"""

from repro.baselines import TensorRTFusionBaseline, UnfusedBaseline
from repro.fission import FissionEngine
from repro.gpu import V100
from repro.models import build_efficientvit_attention_block, build_segformer_attention_block
from repro.orchestration import KernelIdentifierConfig
from repro.partition import PartitionConfig
from repro.pipeline import KorchConfig, KorchPipeline


def study(name: str, graph) -> None:
    print(f"\n=== {name} ({graph.num_nodes} operators) ===")
    pg, report = FissionEngine().run(graph)
    print(f"operator fission: {report.num_operators} operators -> {report.num_primitives} primitives")

    config = KorchConfig(
        gpu="V100",
        partition=PartitionConfig(max_operators=24, hard_limit=28),
        identifier=KernelIdentifierConfig(max_kernel_size=12),
    )
    korch = KorchPipeline(config).optimize(graph)
    strategy = korch.partitions[0].orchestration.strategy
    print(strategy.describe())

    redundant = strategy.redundant_primitives()
    if redundant:
        print(f"redundantly executed primitives (the §4.2 relaxation): {redundant}")

    tensorrt = TensorRTFusionBaseline(V100).run(graph, pg)
    pytorch = UnfusedBaseline(V100).run(graph, pg)
    print(f"\n  Korch    : {korch.latency_ms:7.3f} ms  ({korch.num_kernels} kernels)")
    print(f"  TensorRT : {tensorrt.total_latency_ms:7.3f} ms  ({tensorrt.num_kernels} kernels)  "
          f"-> Korch is {tensorrt.total_latency_s / korch.latency_s:.2f}x faster")
    print(f"  PyTorch  : {pytorch.total_latency_ms:7.3f} ms  ({pytorch.num_kernels} kernels)  "
          f"-> Korch is {pytorch.total_latency_s / korch.latency_s:.2f}x faster")


def main() -> None:
    study("Segformer softmax attention (Figure 4)", build_segformer_attention_block())
    study("EfficientViT ReLU linear attention (Figure 8)", build_efficientvit_attention_block())


if __name__ == "__main__":
    main()
