"""Execute an optimized plan for real, then re-rank it from measured latency.

The optimizer picks kernels from *analytic* latency estimates.  The execution
runtime closes the loop: it runs the assembled plan through a real kernel
library (numpy here), verifies the outputs against the reference executor,
times every kernel, and feeds the observed latencies back into the profile
cache so a second optimization pass ranks candidates by hardware truth
instead of by model.

Run with:  PYTHONPATH=src python examples/execute_and_measure.py
"""

from repro.backends import default_korch_backends
from repro.engine import KorchConfig, KorchEngine
from repro.models import build_candy_block


def main() -> None:
    graph = build_candy_block()
    print(f"model: {graph.name} with {graph.num_nodes} operators")

    with KorchEngine(KorchConfig(gpu="V100")) as engine:
        # 1. Optimize from analytic estimates, as usual.
        result = engine.optimize(graph)
        print(f"\nanalytic plan: {result.num_kernels} kernels, "
              f"{result.latency_ms:.3f} ms predicted")

        # 2. Execute the plan for real.  verify= checks the outputs against
        #    the reference executor; measure= times each kernel (warmup +
        #    trimmed-mean repeats) and persists the timings in the profile
        #    cache under the measured backend's fingerprint.
        report = engine.execute(result, verify=True, measure=True, repeats=3)
        summary = report.summary()
        print(f"\nexecuted {summary['num_kernels']} kernels on "
              f"{summary['library']}: wall {summary['wall_ms']:.2f} ms, "
              f"peak live {summary['peak_live_bytes'] / 1e6:.2f} MB")
        print(f"verification: equivalent={report.verification.equivalent} "
              f"(max |error| = {report.verification.max_abs_error:.2e})")

        # 3. Re-optimize with the measured backend in front.  Signatures we
        #    timed answer from observed latency; everything else falls back
        #    to the analytic models.
        measured = report.measured_backend
        measured.fallback = default_korch_backends()

    with KorchEngine(KorchConfig(gpu="V100"), backends=[measured]) as engine:
        reranked = engine.optimize(graph)
        print(f"\nmeasured plan: {reranked.num_kernels} kernels, "
              f"{reranked.latency_ms:.3f} ms from observed latency")
        if reranked.num_kernels != result.num_kernels:
            print("the measured timings changed the plan shape")
        else:
            print("the analytic plan survived contact with measurement")


if __name__ == "__main__":
    main()
