"""Multi-model serving with ``KorchService`` futures over a ``KorchEngine``.

A serving deployment optimizes many models against the same GPU fleet; most
of them share structure (attention blocks, conv stacks), so profiling each
model in isolation re-pays the dominant cost over and over.  The stack here:

* ``KorchEngine`` owns backends, profile caches, the identify memo and the
  scheduler's executors for its whole lifetime, amortizing tuning across
  every request (``engine.stats`` reports the reuse).
* ``KorchService`` turns that into an async front-end: ``submit`` returns a
  future immediately, requests queue by priority class, and each request
  carries its own ``ServiceStats`` (queue wait, stage times, cache hits).
* Every layer reports into one ``MetricRegistry``: queue-wait / run-time
  histograms with p50/p95/p99, queue-depth samples, cache hit counters —
  exported as JSON (``service.metrics()``) or Prometheus text
  (``service.metrics_text()``) for scraping.
* Duplicate-heavy traffic (fleets re-deploying the same model, autoscaling
  replicas) is coalesced: identical in-flight graphs share one
  optimization, and every waiting future gets the same result.  The burst
  below submits 8 copies of one model and pays for roughly one.

Run:  PYTHONPATH=src python examples/multi_model_serving.py
"""

from repro import AdmissionConfig, KorchConfig, KorchService, Priority
from repro.models import (
    build_efficientvit_attention_block,
    build_segformer_attention_block,
)


def main() -> None:
    # The admission controller shrinks the effective pending cap when p99
    # queue wait breaches the SLO, and grows it back as the queue drains.
    admission = AdmissionConfig(slo_p99_queue_wait_s=30.0, max_pending=64)
    with KorchService(
        config=KorchConfig(gpu="V100"), workers=2, admission=admission
    ) as service:
        # Futures come back immediately; the service worker pool drives the
        # engine behind the scenes.  An interactive model jumps the queue.
        requests = service.submit_many(
            [
                build_efficientvit_attention_block(),
                build_segformer_attention_block(),
            ]
        )
        urgent = service.submit(
            build_efficientvit_attention_block(), priority=Priority.HIGH
        )

        print("=== served results (futures) ===")
        for request in [*requests, urgent]:
            result = request.result(timeout=600)  # Future[KorchResult]
            summary = result.summary()
            stats = request.stats
            print(
                f"{summary['model']:<28} {summary['latency_ms']:8.4f} ms  "
                f"{summary['num_kernels']:3d} kernels  "
                f"prio={stats.priority.name:<6} "
                f"queue={stats.queue_wait_s * 1e3:6.1f}ms run={stats.run_s:6.2f}s  "
                f"estimates={stats.backend_estimate_calls}"
            )

        # The urgent twin shares every kernel with the first model: most of
        # its profiles come from the engine's warm caches (see
        # cross_model_profile_reuses) and its enumeration from the identify
        # memo (identify_memo_hits).
        engine = service.engine
        print("\n=== graceful drain, then engine stats ===")
        service.drain()
        for key, value in engine.stats.as_dict().items():
            print(f"  {key}: {value}")
        print("\n=== service report ===")
        report = service.report.as_dict()
        for key, value in report.items():
            if key == "histograms":
                continue
            print(f"  {key}: {value}")
        print("\n=== latency summaries (from the metric registry) ===")
        for name, summary in report["histograms"].items():
            print(
                f"  {name:<16} count={summary['count']:3d} "
                f"p50={summary['p50']:.4f} p95={summary['p95']:.4f} "
                f"p99={summary['p99']:.4f}"
            )
        # A duplicate-heavy burst: eight replicas of the same model arrive
        # at once.  submit_many pre-groups them and the in-flight coalescer
        # fans one optimization out to every future — followers report
        # plan_cache="coalesced" and near-zero run time.
        print("\n=== duplicate-heavy burst (8 copies, coalesced) ===")
        burst = service.submit_many(
            [build_segformer_attention_block() for _ in range(8)]
        )
        for request in burst:
            request.result(timeout=600)
        leaders = sum(1 for r in burst if not r.stats.coalesced)
        followers = sum(1 for r in burst if r.stats.coalesced)
        print(f"  optimizations paid for: {leaders}  coalesced followers: {followers}")
        print(f"  service report coalesced total: {service.report.coalesced}")

        print("\n=== Prometheus scrape (excerpt) ===")
        lines = service.metrics_text().splitlines()
        for line in lines:
            if (
                "queue_wait_seconds" in line
                or "coalesce" in line
                or line.startswith("# TYPE")
            ):
                print(f"  {line}")


if __name__ == "__main__":
    main()
