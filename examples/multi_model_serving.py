"""Multi-model serving with the long-lived KorchEngine.

A serving deployment optimizes many models against the same GPU fleet; most
of them share structure (attention blocks, conv stacks), so profiling each
model in isolation re-pays the dominant cost over and over.  ``KorchEngine``
owns the backends, profile caches and worker pool for its whole lifetime:

* ``optimize_many`` interleaves partitions from different models onto one
  pool and answers shared kernels from warm profiles,
* ``engine.stats`` reports the cross-model amortization,
* with ``cache_dir`` set, everything also persists across processes.

Run:  PYTHONPATH=src python examples/multi_model_serving.py
"""

from repro import KorchConfig, KorchEngine
from repro.models import (
    build_efficientvit_attention_block,
    build_segformer_attention_block,
)


def main() -> None:
    models = [
        build_efficientvit_attention_block(),
        build_segformer_attention_block(),
    ]

    with KorchEngine(KorchConfig(gpu="V100")) as engine:
        results = engine.optimize_many(models, max_concurrency=4)

        print("=== optimize_many ===")
        for result in results:
            summary = result.summary()
            print(
                f"{summary['model']:<28} {summary['latency_ms']:8.4f} ms  "
                f"{summary['num_kernels']:3d} kernels  "
                f"estimates={summary['backend_estimate_calls']}"
            )
            stage_line = "  ".join(
                f"{name.split('_', 1)[1][:-2]}={value * 1e3:.1f}ms"
                for name, value in summary.items()
                if name.startswith("stage_")
            )
            print(f"{'':<28} stages: {stage_line}")

        # A third model structurally identical to the first (think: the same
        # architecture fine-tuned under a new name): every kernel is answered
        # from the engine's warm profiles — zero backend estimates.
        twin = build_efficientvit_attention_block()
        twin.name = "efficientvit_attention_v2"
        repeat = engine.optimize(twin)
        print("\n=== warm twin (same structure, new model) ===")
        print(
            f"backend estimate calls: {repeat.cache.backend_estimate_calls}, "
            f"profile cache hits: {repeat.cache.profile_cache_hits}, "
            f"cross-model reuses so far: {engine.stats.cross_model_profile_reuses}"
        )

        print("\n=== engine stats ===")
        for key, value in engine.stats.as_dict().items():
            print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
