"""Multi-model serving with ``KorchService`` futures over a ``KorchEngine``.

A serving deployment optimizes many models against the same GPU fleet; most
of them share structure (attention blocks, conv stacks), so profiling each
model in isolation re-pays the dominant cost over and over.  The stack here:

* ``KorchEngine`` owns backends, profile caches, the identify memo and the
  scheduler's executors for its whole lifetime, amortizing tuning across
  every request (``engine.stats`` reports the reuse).
* ``KorchService`` turns that into an async front-end: ``submit`` returns a
  future immediately, requests queue by priority class, and each request
  carries its own ``ServiceStats`` (queue wait, stage times, cache hits).

Run:  PYTHONPATH=src python examples/multi_model_serving.py
"""

from repro import KorchConfig, KorchService, Priority
from repro.models import (
    build_efficientvit_attention_block,
    build_segformer_attention_block,
)


def main() -> None:
    with KorchService(config=KorchConfig(gpu="V100"), workers=2) as service:
        # Futures come back immediately; the service worker pool drives the
        # engine behind the scenes.  An interactive model jumps the queue.
        requests = service.submit_many(
            [
                build_efficientvit_attention_block(),
                build_segformer_attention_block(),
            ]
        )
        urgent = service.submit(
            build_efficientvit_attention_block(), priority=Priority.HIGH
        )

        print("=== served results (futures) ===")
        for request in [*requests, urgent]:
            result = request.result(timeout=600)  # Future[KorchResult]
            summary = result.summary()
            stats = request.stats
            print(
                f"{summary['model']:<28} {summary['latency_ms']:8.4f} ms  "
                f"{summary['num_kernels']:3d} kernels  "
                f"prio={stats.priority.name:<6} "
                f"queue={stats.queue_wait_s * 1e3:6.1f}ms run={stats.run_s:6.2f}s  "
                f"estimates={stats.backend_estimate_calls}"
            )

        # The urgent twin shares every kernel with the first model: most of
        # its profiles come from the engine's warm caches (see
        # cross_model_profile_reuses) and its enumeration from the identify
        # memo (identify_memo_hits).
        engine = service.engine
        print("\n=== graceful drain, then engine stats ===")
        service.drain()
        for key, value in engine.stats.as_dict().items():
            print(f"  {key}: {value}")
        print("\n=== service report ===")
        for key, value in service.report.as_dict().items():
            print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
